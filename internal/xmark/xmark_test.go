package xmark

import (
	"testing"

	"gtpq/internal/graph"
)

func TestGenerateShape(t *testing.T) {
	g, st := Generate(Config{Scale: 1, PersonsPerUnit: 100, Seed: 1})
	if st.Persons != 100 {
		t.Errorf("Persons = %d", st.Persons)
	}
	if g.N() != st.Nodes || g.M() != st.Edges {
		t.Errorf("stats disagree with graph: %+v vs N=%d M=%d", st, g.N(), g.M())
	}
	// The document structure must be a forest: one tree parent each.
	for v := 0; v < g.N(); v++ {
		parents := 0
		for _, u := range g.In(graph.NodeID(v)) {
			if g.EdgeKindOf(u, graph.NodeID(v)) == graph.TreeEdge {
				parents++
			}
		}
		if parents > 1 {
			t.Fatalf("node %d has %d tree parents", v, parents)
		}
	}
	// Required element types exist.
	for _, l := range []string{"open_auction", "bidder", "personref", "seller", "itemref", "education", "address", "city", "location", "current", "profile", "mailbox"} {
		if len(g.ByLabel(l)) == 0 {
			t.Errorf("no %q nodes generated", l)
		}
	}
	// Person/item group labels cover several groups.
	groups := 0
	for i := 0; i < Groups; i++ {
		if len(g.ByLabel(groupLabel("person", i))) > 0 {
			groups++
		}
	}
	if groups < 5 {
		t.Errorf("only %d person groups populated", groups)
	}
}

func TestScalingIsLinear(t *testing.T) {
	_, s1 := Generate(Config{Scale: 1, PersonsPerUnit: 100, Seed: 1})
	_, s2 := Generate(Config{Scale: 2, PersonsPerUnit: 100, Seed: 1})
	ratio := float64(s2.Nodes) / float64(s1.Nodes)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("node count ratio %f not ~2 (Table 1 linear scaling)", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	g1, s1 := Generate(Config{Scale: 0.5, PersonsPerUnit: 100, Seed: 9})
	g2, s2 := Generate(Config{Scale: 0.5, PersonsPerUnit: 100, Seed: 9})
	if s1 != s2 || g1.N() != g2.N() || g1.M() != g2.M() {
		t.Error("generation is not deterministic")
	}
	for v := 0; v < g1.N(); v++ {
		if g1.Label(graph.NodeID(v)) != g2.Label(graph.NodeID(v)) {
			t.Fatalf("labels differ at node %d", v)
		}
	}
}

func TestCrossEdgesAreRefs(t *testing.T) {
	g, _ := Generate(Config{Scale: 0.5, PersonsPerUnit: 60, Seed: 2})
	// Every personref must have exactly one cross edge to a person node.
	for _, pr := range g.ByLabel("personref") {
		var cross []graph.NodeID
		cross = g.CrossTargets(pr, cross)
		if len(cross) != 1 {
			t.Fatalf("personref %d has %d cross targets", pr, len(cross))
		}
		if tag, ok := g.Attr(cross[0], "tag"); !ok || tag.Str != "person" {
			t.Fatalf("personref %d points at %q", pr, g.Label(cross[0]))
		}
	}
}
