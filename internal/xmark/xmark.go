// Package xmark generates XMark-like auction-site graphs (Schmidt et
// al., VLDB'02): a document forest — site / regions / items, people /
// persons, open_auctions, closed_auctions — whose IDREF links (personref,
// itemref, seller, buyer) become cross edges, yielding exactly the
// "trees connected by cross edges" shape §5.1 evaluates on. Person and
// item nodes are randomly classified into ten groups and labeled
// person0..person9 / item0..item9 (the paper's attribute encoding);
// every other node is labeled by its tag.
//
// Sizes scale linearly with the scaling factor like the paper's Table 1;
// absolute counts are configurable so the suite runs on one machine.
package xmark

import (
	"math/rand"

	"gtpq/internal/graph"
)

// Config controls generation.
type Config struct {
	// Scale is the paper's scaling factor (0.5–4 in Table 1).
	Scale float64
	// PersonsPerUnit is the person count at Scale 1.
	PersonsPerUnit int
	// Seed drives the deterministic generator.
	Seed int64
}

// Groups is the number of person/item label groups (the paper uses 10).
const Groups = 10

// DefaultConfig mirrors the benchmark setup at a laptop-friendly size.
func DefaultConfig(scale float64) Config {
	return Config{Scale: scale, PersonsPerUnit: 2000, Seed: 7}
}

// Stats summarizes a generated dataset (Table 1's columns).
type Stats struct {
	Scale   float64
	Nodes   int
	Edges   int
	Persons int
	Items   int
	Open    int
	Closed  int
}

// Generate builds the graph for cfg.
func Generate(cfg Config) (*graph.Graph, Stats) {
	r := rand.New(rand.NewSource(cfg.Seed))
	nPersons := int(float64(cfg.PersonsPerUnit) * cfg.Scale)
	if nPersons < 10 {
		nPersons = 10
	}
	nItems := nPersons * 17 / 20
	nOpen := nPersons * 17 / 20
	nClosed := nPersons * 38 / 100

	g := graph.New(nPersons*12, nPersons*14)
	site := g.AddNode("site", nil)

	// People.
	people := g.AddNode("people", nil)
	g.AddEdge(site, people)
	persons := make([]graph.NodeID, nPersons)
	for i := range persons {
		group := r.Intn(Groups)
		p := g.AddNode(groupLabel("person", group), graph.Attrs{
			"tag":   graph.StrV("person"),
			"group": graph.NumV(float64(group)),
		})
		g.AddEdge(people, p)
		persons[i] = p
		g.AddEdge(p, g.AddNode("name", nil))
		g.AddEdge(p, g.AddNode("emailaddress", nil))
		if r.Intn(100) < 70 {
			addr := g.AddNode("address", nil)
			g.AddEdge(p, addr)
			g.AddEdge(addr, g.AddNode("street", nil))
			g.AddEdge(addr, g.AddNode("city", nil))
			g.AddEdge(addr, g.AddNode("country", nil))
		}
		if r.Intn(100) < 60 {
			prof := g.AddNode("profile", nil)
			g.AddEdge(p, prof)
			g.AddEdge(prof, g.AddNode("interest", nil))
			if r.Intn(100) < 50 {
				g.AddEdge(prof, g.AddNode("education", nil))
			}
			if r.Intn(100) < 30 {
				g.AddEdge(prof, g.AddNode("business", nil))
			}
		}
	}

	// Regions and items.
	regions := g.AddNode("regions", nil)
	g.AddEdge(site, regions)
	regionNames := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	regionNodes := make([]graph.NodeID, len(regionNames))
	for i, rn := range regionNames {
		regionNodes[i] = g.AddNode(rn, nil)
		g.AddEdge(regions, regionNodes[i])
	}
	items := make([]graph.NodeID, nItems)
	for i := range items {
		group := r.Intn(Groups)
		it := g.AddNode(groupLabel("item", group), graph.Attrs{
			"tag":   graph.StrV("item"),
			"group": graph.NumV(float64(group)),
		})
		g.AddEdge(regionNodes[r.Intn(len(regionNodes))], it)
		items[i] = it
		g.AddEdge(it, g.AddNode("location", nil))
		g.AddEdge(it, g.AddNode("quantity", nil))
		g.AddEdge(it, g.AddNode("name", nil))
		if r.Intn(100) < 60 {
			mb := g.AddNode("mailbox", nil)
			g.AddEdge(it, mb)
			for k := r.Intn(3); k > 0; k-- {
				mail := g.AddNode("mail", nil)
				g.AddEdge(mb, mail)
				g.AddEdge(mail, g.AddNode("date", nil))
			}
		}
	}

	// Open auctions.
	opens := g.AddNode("open_auctions", nil)
	g.AddEdge(site, opens)
	for i := 0; i < nOpen; i++ {
		oa := g.AddNode("open_auction", nil)
		g.AddEdge(opens, oa)
		g.AddEdge(oa, g.AddNode("initial", nil))
		if r.Intn(100) < 45 {
			g.AddEdge(oa, g.AddNode("reserve", nil))
		}
		for b := r.Intn(4); b > 0; b-- {
			bd := g.AddNode("bidder", nil)
			g.AddEdge(oa, bd)
			g.AddEdge(bd, g.AddNode("date", nil))
			pr := g.AddNode("personref", nil)
			g.AddEdge(bd, pr)
			g.AddCrossEdge(pr, persons[r.Intn(len(persons))])
			g.AddEdge(bd, g.AddNode("increase", nil))
		}
		g.AddEdge(oa, g.AddNode("current", nil))
		ir := g.AddNode("itemref", nil)
		g.AddEdge(oa, ir)
		g.AddCrossEdge(ir, items[r.Intn(len(items))])
		sl := g.AddNode("seller", nil)
		g.AddEdge(oa, sl)
		g.AddCrossEdge(sl, persons[r.Intn(len(persons))])
		g.AddEdge(oa, g.AddNode("quantity", nil))
	}

	// Closed auctions.
	closeds := g.AddNode("closed_auctions", nil)
	g.AddEdge(site, closeds)
	for i := 0; i < nClosed; i++ {
		ca := g.AddNode("closed_auction", nil)
		g.AddEdge(closeds, ca)
		sl := g.AddNode("seller", nil)
		g.AddEdge(ca, sl)
		g.AddCrossEdge(sl, persons[r.Intn(len(persons))])
		by := g.AddNode("buyer", nil)
		g.AddEdge(ca, by)
		g.AddCrossEdge(by, persons[r.Intn(len(persons))])
		ir := g.AddNode("itemref", nil)
		g.AddEdge(ca, ir)
		g.AddCrossEdge(ir, items[r.Intn(len(items))])
		g.AddEdge(ca, g.AddNode("price", nil))
		g.AddEdge(ca, g.AddNode("date", nil))
	}

	g.Freeze()
	return g, Stats{
		Scale:   cfg.Scale,
		Nodes:   g.N(),
		Edges:   g.M(),
		Persons: nPersons,
		Items:   nItems,
		Open:    nOpen,
		Closed:  nClosed,
	}
}

func groupLabel(kind string, group int) string {
	return kind + string(rune('0'+group))
}
