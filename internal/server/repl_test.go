package server

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"testing"

	"gtpq/internal/delta"
	"gtpq/internal/repl"
)

// The replication endpoints serve the dataset's delta log with state
// headers and a body CRC; offsets past the end answer empty bodies
// (the long-poll caught-up case with wait_ms=0).
func TestReplLogEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	// Before any update there is no log: empty body, zero size.
	resp, err := http.Get(ts.URL + "/repl/log?dataset=small&from=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("empty log: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if got := resp.Header.Get(repl.HeaderSize); got != "0" {
		t.Fatalf("%s = %q, want 0", repl.HeaderSize, got)
	}
	baseHdr := resp.Header.Get(repl.HeaderBase)
	if _, err := repl.ParseBase(baseHdr); err != nil {
		t.Fatalf("bad %s %q: %v", repl.HeaderBase, baseHdr, err)
	}

	// One update materializes the log: header + one frame, CRC-stamped.
	ur, err := http.Post(ts.URL+"/update", "application/json",
		jsonBody(t, map[string]interface{}{
			"dataset": "small",
			"nodes":   []map[string]interface{}{{"label": "a"}},
		}))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ur.Body)
	ur.Body.Close()
	if ur.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d", ur.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/repl/log?dataset=small&from=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) <= delta.HeaderLen {
		t.Fatalf("log body %d bytes, want header+frame", len(body))
	}
	wantCRC := strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10)
	if got := resp.Header.Get(repl.HeaderCRC); got != wantCRC {
		t.Fatalf("%s = %q, want %q", repl.HeaderCRC, got, wantCRC)
	}
	hdr, err := delta.ParseHeader(body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(repl.HeaderBase); got != repl.FormatBase(hdr) {
		t.Fatalf("base header %q disagrees with log header %q", got, repl.FormatBase(hdr))
	}
	if got := resp.Header.Get(repl.HeaderBatches); got != "1" {
		t.Fatalf("%s = %q, want 1", repl.HeaderBatches, got)
	}

	// A resumed fetch from the current size answers empty immediately.
	size := resp.Header.Get(repl.HeaderSize)
	resp, err = http.Get(ts.URL + "/repl/log?dataset=small&from=" + size)
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(tail) != 0 {
		t.Fatalf("caught-up fetch returned %d bytes", len(tail))
	}

	// Unknown datasets are 404, like the query path.
	resp, err = http.Get(ts.URL + "/repl/log?dataset=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", resp.StatusCode)
	}
}

// /readyz splits from /healthz: liveness always answers while the
// process serves; readiness consults loading state and the configured
// ReadyCheck (a replica's tailer).
func TestReadyzSplitsFromHealthz(t *testing.T) {
	ready := true
	var cfg Config
	cfg.ReadyCheck = func() (bool, []string) {
		if ready {
			return true, nil
		}
		return false, []string{"small"}
	}
	ts, _ := newTestServer(t, cfg)

	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)

	ready = false
	check("/healthz", http.StatusOK) // liveness unaffected
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body readyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("/readyz: status %d ready=%v, want 503/false", resp.StatusCode, body.Ready)
	}
	if len(body.NotSynced) != 1 || body.NotSynced[0] != "small" {
		t.Fatalf("NotSynced = %v", body.NotSynced)
	}
}

// Read-only replicas refuse direct writes with 403 — their datasets
// advance only through the tailer.
func TestReadOnlyRefusesUpdates(t *testing.T) {
	ts, _ := newTestServer(t, Config{ReadOnly: true})
	resp, err := http.Post(ts.URL+"/update", "application/json",
		jsonBody(t, map[string]interface{}{
			"dataset": "small",
			"nodes":   []map[string]interface{}{{"label": "a"}},
		}))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only update: status %d, want 403", resp.StatusCode)
	}
	// Queries still work.
	code, _ := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "small", "query": "node x label=a output",
	})
	if code != http.StatusOK {
		t.Fatalf("read-only query: status %d", code)
	}
}

func jsonBody(t *testing.T, v interface{}) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}
