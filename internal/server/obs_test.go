package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"gtpq/internal/obs"
)

// syncBuffer makes a bytes.Buffer safe to read while the access-log
// middleware writes it from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines(t *testing.T) []string {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// TestRequestIDHeader checks both directions of the request-ID
// middleware: an inbound X-GTPQ-Request-ID is adopted verbatim, and a
// request without one gets a fresh 16-hex-char ID.
func TestRequestIDHeader(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	body := []byte(`{"dataset":"small","query":"node x label=a output"}`)
	req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "caller-supplied-42" {
		t.Fatalf("inbound request ID not adopted: got %q", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get(requestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated request ID %q is not 16 hex chars", id)
	}
}

// TestDebugTraceAndRequestID checks the ?debug=1 attachments: the
// response echoes the request ID and carries a span tree whose stages
// include the engine phases.
func TestDebugTraceAndRequestID(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	body := []byte(`{"dataset":"small","query":"` + strings.ReplaceAll(abQuery, "\n", `\n`) + `"}`)
	req, err := http.NewRequest("POST", ts.URL+"/query?debug=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		RequestID string    `json:"request_id"`
		Trace     *obs.Span `json:"trace"`
		Rows      [][]int   `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != "trace-me" {
		t.Fatalf("debug response request_id = %q, want trace-me", out.RequestID)
	}
	if out.Trace == nil {
		t.Fatal("debug response carries no trace")
	}
	if out.Trace.Millis < 0 {
		t.Fatalf("root span still open: ms = %v", out.Trace.Millis)
	}
	names := map[string]bool{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		names[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(out.Trace)
	for _, want := range []string{"admit", "plan", "candidates", "enumerate"} {
		if !names[want] {
			t.Fatalf("trace missing span %q (got %v)", want, names)
		}
	}

	// Without ?debug=1 neither field appears.
	_, plain := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "query": abQuery})
	if _, ok := plain["trace"]; ok {
		t.Fatal("trace attached without debug=1")
	}
	if _, ok := plain["request_id"]; ok {
		t.Fatal("request_id attached without debug=1")
	}
}

// TestSlowlogCapture runs a query under a zero-ish threshold and
// checks it lands in GET /debug/slowlog with its trace stages; a
// server without a threshold reports enabled:false.
func TestSlowlogCapture(t *testing.T) {
	ts, _ := newTestServer(t, Config{SlowLogThreshold: time.Nanosecond, SlowLogSize: 4})

	body := []byte(`{"dataset":"small","query":"` + strings.ReplaceAll(abQuery, "\n", `\n`) + `"}`)
	req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, "slow-one")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Enabled     bool            `json:"enabled"`
		ThresholdMS int64           `json:"threshold_ms"`
		Size        int             `json:"size"`
		Total       int64           `json:"total"`
		Entries     []obs.SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Size != 4 {
		t.Fatalf("slowlog config not reported: %+v", out)
	}
	if out.Total < 1 || len(out.Entries) < 1 {
		t.Fatalf("slow query not captured: total=%d entries=%d", out.Total, len(out.Entries))
	}
	e := out.Entries[0]
	if e.Dataset != "small" || e.RequestID != "slow-one" {
		t.Fatalf("slowlog entry mismatch: %+v", e)
	}
	if !strings.Contains(e.Query, "label=a") {
		t.Fatalf("slowlog entry query = %q", e.Query)
	}
	if len(e.Stages) == 0 {
		t.Fatal("slowlog entry carries no stage timings")
	}

	// Disabled server: enabled:false, no entries.
	ts2, _ := newTestServer(t, Config{})
	resp, err = http.Get(ts2.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var off struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&off); err != nil {
		t.Fatal(err)
	}
	if off.Enabled {
		t.Fatal("slowlog reported enabled without a threshold")
	}
}

// TestAccessLogJSON checks the structured request log: one JSON line
// per request with the middleware's fields, and -log-sample thinning.
func TestAccessLogJSON(t *testing.T) {
	buf := &syncBuffer{}
	ts, _ := newTestServer(t, Config{AccessLog: buf, AccessLogSample: 1})

	postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "query": "node x label=a output"})
	lines := buf.Lines(t)
	if len(lines) != 1 {
		t.Fatalf("want 1 access-log line, got %d: %v", len(lines), lines)
	}
	var line struct {
		RequestID string  `json:"request_id"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Millis    float64 `json:"ms"`
		Dataset   string  `json:"dataset"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &line); err != nil {
		t.Fatalf("access log line is not JSON: %q: %v", lines[0], err)
	}
	if line.Method != "POST" || line.Path != "/query" || line.Status != 200 || line.Dataset != "small" {
		t.Fatalf("access log line mismatch: %+v", line)
	}
	if line.RequestID == "" || line.Millis < 0 {
		t.Fatalf("access log line incomplete: %+v", line)
	}

	// Sampling: every 3rd request logged.
	buf2 := &syncBuffer{}
	ts2, _ := newTestServer(t, Config{AccessLog: buf2, AccessLogSample: 3})
	for i := 0; i < 9; i++ {
		resp, err := http.Get(ts2.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := len(buf2.Lines(t)); got != 3 {
		t.Fatalf("sample=3 over 9 requests logged %d lines, want 3", got)
	}
}

// TestMetricsExposition checks /metrics end to end: valid exposition,
// the per-dataset latency histogram present after a query, and the
// core counters carrying the served traffic.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	for i := 0; i < 3; i++ {
		postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "query": abQuery})
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("exposition Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	body := string(raw)
	for _, want := range []string{
		`gtpq_query_seconds_bucket{dataset="small",index="threehop",le="+Inf"} 3`,
		`gtpq_query_seconds_count{dataset="small",index="threehop"} 3`,
		"gtpq_queries_total 3",
		"gtpq_requests_total",
		"gtpq_in_flight",
		"gtpq_workers",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}
