package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/core"
	"gtpq/internal/gen"
	"gtpq/internal/graph"
	"gtpq/internal/graphio"
	"gtpq/internal/qlang"
	"gtpq/internal/shard"
)

// formatGenQuery renders a generated query as qlang text. gen.Query
// reuses node names, and the DSL needs them unique, so they are
// rewritten by id first.
func formatGenQuery(q *core.Query) string {
	for i, n := range q.Nodes {
		n.Name = fmt.Sprintf("n%d", i)
	}
	return qlang.Format(q)
}

func saveFlat(t *testing.T, dir, name string, g *graph.Graph) {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCacheEquivalence is the acceptance property: over randomized
// graph/query workloads, answers served with the result cache enabled
// are byte-identical to cache-disabled runs — across both reachability
// backends, flat and sharded datasets, repeated (warm) requests, and a
// hot-reload generation bump in the middle.
func TestCacheEquivalence(t *testing.T) {
	labels := []string{"a", "b", "c"}
	for _, kind := range []string{"threehop", "tc"} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				g := gen.Forest(r, 4, 40, 90, labels)

				dir := t.TempDir()
				saveFlat(t, dir, "flat.json", g)
				plan, err := shard.Partition(g, 3, shard.ModeAuto)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := shard.WriteDir(filepath.Join(dir, "parted"), "parted", g, plan, shard.Options{Index: kind}); err != nil {
					t.Fatal(err)
				}

				// Two independent servers over the same directory: one
				// cached, one not. Separate catalogs so each manages its
				// own loads and generations.
				newSrv := func(cacheBytes int64) *httptest.Server {
					cat, err := catalog.Open(dir, catalog.Options{Index: kind})
					if err != nil {
						t.Fatal(err)
					}
					ts := httptest.NewServer(New(cat, Config{CacheBytes: cacheBytes}).Handler())
					t.Cleanup(ts.Close)
					return ts
				}
				cached := newSrv(8 << 20)
				uncached := newSrv(0)

				queries := make([]string, 0, 6)
				for len(queries) < 6 {
					q := gen.Query(r, 2+r.Intn(4), labels, true, true)
					queries = append(queries, formatGenQuery(q))
				}

				check := func(phase string) {
					for _, dataset := range []string{"flat", "parted"} {
						for qi, src := range queries {
							body := map[string]interface{}{"dataset": dataset, "query": src, "timeout_ms": 30000}
							codeU, outU := postQuery(t, uncached.URL, body)
							if codeU != http.StatusOK {
								t.Fatalf("%s: uncached %s q%d: status %d: %v", phase, dataset, qi, codeU, outU)
							}
							want, _ := json.Marshal(outU["rows"])
							// Twice against the cached server: a cold miss,
							// then a warm hit — both must match the
							// uncached answer byte for byte.
							for round := 0; round < 2; round++ {
								codeC, outC := postQuery(t, cached.URL, body)
								if codeC != http.StatusOK {
									t.Fatalf("%s: cached %s q%d round %d: status %d: %v", phase, dataset, qi, round, codeC, outC)
								}
								got, _ := json.Marshal(outC["rows"])
								if !bytes.Equal(want, got) {
									t.Fatalf("%s: %s q%d round %d: cached rows diverged\nquery:\n%s\nwant %s\ngot  %s",
										phase, dataset, qi, round, src, want, got)
								}
							}
						}
					}
				}
				check("initial")

				// Hot reload: a different graph under the same flat name
				// must flip both servers to the new answers — the cached
				// server through a fresh generation, not stale entries.
				g2 := gen.Forest(rand.New(rand.NewSource(seed+100)), 4, 40, 90, labels)
				saveFlat(t, dir, "flat.json", g2)
				future := time.Now().Add(2 * time.Second)
				if err := os.Chtimes(filepath.Join(dir, "flat.json"), future, future); err != nil {
					t.Fatal(err)
				}
				for _, dataset := range []string{"flat"} {
					for qi, src := range queries {
						body := map[string]interface{}{"dataset": dataset, "query": src, "timeout_ms": 30000}
						_, outU := postQuery(t, uncached.URL, body)
						want, _ := json.Marshal(outU["rows"])
						for round := 0; round < 2; round++ {
							_, outC := postQuery(t, cached.URL, body)
							got, _ := json.Marshal(outC["rows"])
							if !bytes.Equal(want, got) {
								t.Fatalf("post-reload: %s q%d round %d diverged\nwant %s\ngot  %s", dataset, qi, round, want, got)
							}
						}
					}
				}
			})
		}
	}
}
