package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	typ  string
	id   uint64
	data map[string]interface{}
}

// sseStream wraps an open /subscribe response with a background reader
// so tests can receive events with a timeout instead of hanging.
type sseStream struct {
	resp   *http.Response
	events chan sseEvent
	errs   chan error
}

func openSSE(t *testing.T, url, dataset, query, lastEventID string) *sseStream {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"dataset": dataset, "query": query})
	req, err := http.NewRequest(http.MethodPost, url+"/subscribe", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("subscribe: status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	s := &sseStream{resp: resp, events: make(chan sseEvent, 16), errs: make(chan error, 1)}
	t.Cleanup(s.close)
	go s.read()
	return s
}

func (s *sseStream) close() { s.resp.Body.Close() }

func (s *sseStream) read() {
	br := bufio.NewReader(s.resp.Body)
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			s.errs <- err
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.typ != "" {
				s.events <- ev
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, ":"): // keep-alive comment
		case strings.HasPrefix(line, "event: "):
			ev.typ = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ev.id, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
		case strings.HasPrefix(line, "data: "):
			json.Unmarshal([]byte(line[len("data: "):]), &ev.data)
		}
	}
}

func (s *sseStream) next(t *testing.T) sseEvent {
	t.Helper()
	select {
	case ev := <-s.events:
		return ev
	case err := <-s.errs:
		t.Fatalf("stream ended: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for SSE event")
	}
	return sseEvent{}
}

// expectClosed asserts the stream ends (EOF) shortly.
func (s *sseStream) expectClosed(t *testing.T) {
	t.Helper()
	select {
	case err := <-s.errs:
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Logf("stream closed with %v", err)
		}
	case ev := <-s.events:
		t.Fatalf("expected stream close, got event %+v", ev)
	case <-time.After(5 * time.Second):
		t.Fatal("stream never closed")
	}
}

func addPair(t *testing.T, url string, from, to int) {
	t.Helper()
	code, out := postJSON(t, url+"/update", map[string]interface{}{
		"dataset": "small",
		"nodes":   []map[string]interface{}{{"label": "b"}},
		"edges":   []map[string]interface{}{{"from": from, "to": to}},
	})
	if code != http.StatusOK {
		t.Fatalf("update: status %d: %v", code, out)
	}
}

// TestSubscribeStream covers the basic standing-query flow: snapshot
// on attach, a delta event after a mutating update, and no event for
// an update that cannot touch the query.
func TestSubscribeStream(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	s := openSSE(t, ts.URL, "small", abQuery, "")

	snap := s.next(t)
	if snap.typ != "snapshot" || snap.id == 0 {
		t.Fatalf("first event %+v, want snapshot", snap)
	}
	rows := snap.data["rows"].([]interface{})
	if len(rows) != 2 { // (0,1) and (0,2)
		t.Fatalf("snapshot rows = %d, want 2", len(rows))
	}

	// An update in a label-disjoint corner: an edge between the two
	// c-labeled vertices can never extend a→b and must be skipped
	// without a notification.
	code, out := postJSON(t, ts.URL+"/update", map[string]interface{}{
		"dataset": "small",
		"edges":   []map[string]interface{}{{"from": 3, "to": 5}},
	})
	if code != http.StatusOK {
		t.Fatalf("disjoint update: %d %v", code, out)
	}
	srv.Subs().Sync("small")
	skipsAfter := srv.Subs().Stats().Skips

	// Now a real extension: a new b under the a at vertex 4.
	addPair(t, ts.URL, 4, 6)
	delta := s.next(t)
	if delta.typ != "delta" || delta.id <= snap.id {
		t.Fatalf("delta event %+v", delta)
	}
	added := delta.data["added"].([]interface{})
	if len(added) != 1 {
		t.Fatalf("added = %v, want 1 tuple", added)
	}
	if skipsAfter == 0 {
		t.Fatal("disjoint update was not skipped")
	}

	st := srv.Subs().Stats()
	if st.ActiveSubs != 1 || st.Clients != 1 || st.Notifications == 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSubscribeResume covers Last-Event-ID: a reconnecting client
// whose generation is still in the replay ring receives only the
// missed deltas, never a snapshot reset.
func TestSubscribeResume(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	s := openSSE(t, ts.URL, "small", abQuery, "")
	snap := s.next(t)
	if snap.typ != "snapshot" {
		t.Fatalf("first event %q", snap.typ)
	}
	addPair(t, ts.URL, 4, 6)
	d1 := s.next(t)
	if d1.typ != "delta" {
		t.Fatalf("event %q, want delta", d1.typ)
	}
	s.close() // drop the connection, remember d1.id

	addPair(t, ts.URL, 4, 7)
	srv.Subs().Sync("small")

	r := openSSE(t, ts.URL, "small", abQuery, fmt.Sprintf("%d", d1.id))
	d2 := r.next(t)
	if d2.typ != "delta" {
		t.Fatalf("resumed first event %q, want replayed delta (no snapshot reset)", d2.typ)
	}
	if d2.id <= d1.id {
		t.Fatalf("replayed id %d not after %d", d2.id, d1.id)
	}
	if added := d2.data["added"].([]interface{}); len(added) != 1 {
		t.Fatalf("replayed added = %v", added)
	}
}

// TestSubscribeAdmissionAndErrors covers -max-subs 429s and the error
// statuses for bad requests.
func TestSubscribeAdmissionAndErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxSubs: 1})
	s := openSSE(t, ts.URL, "small", abQuery, "")
	if ev := s.next(t); ev.typ != "snapshot" {
		t.Fatalf("first event %q", ev.typ)
	}

	post := func(body map[string]string) int {
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/subscribe", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := post(map[string]string{"dataset": "small", "query": abQuery}); code != http.StatusTooManyRequests {
		t.Fatalf("over max-subs: status %d, want 429", code)
	}
	if code := post(map[string]string{"dataset": "nope", "query": abQuery}); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", code)
	}
	if code := post(map[string]string{"dataset": "small", "query": "definitely not a query"}); code != http.StatusBadRequest {
		t.Fatalf("bad query: status %d, want 400", code)
	}
	if code := post(map[string]string{"dataset": "small"}); code != http.StatusBadRequest {
		t.Fatalf("missing query: status %d, want 400", code)
	}
}

// TestSubscribeShutdown covers the drain contract: closing the
// registry ends every open stream so http.Server.Shutdown can finish.
func TestSubscribeShutdown(t *testing.T) {
	ts, srv := newTestServer(t, Config{})
	s := openSSE(t, ts.URL, "small", abQuery, "")
	if ev := s.next(t); ev.typ != "snapshot" {
		t.Fatalf("first event %q", ev.typ)
	}
	srv.CloseSubscriptions()
	s.expectClosed(t)
}
