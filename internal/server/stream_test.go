package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// chainAll enumerates every node of the "chain" test dataset: 1500
// rows, a comfortable multi-page result.
const chainAll = "node x label=a output"

// chainPair is the ancestor-descendant pair query over "chain": ~1.1M
// rows, far more than any client should want materialized.
const chainPair = "node x label=a output\nnode y label=a parent=x edge=ad output"

// postPage posts one paged query and decodes the single-query response.
func postPage(t *testing.T, url, dataset, query string, limit int, cursor string) (int, map[string]interface{}) {
	t.Helper()
	body := map[string]interface{}{"dataset": dataset, "query": query}
	if limit != 0 {
		body["limit"] = limit
	}
	if cursor != "" {
		body["cursor"] = cursor
	}
	return postQuery(t, url, body)
}

// TestPaginationRoundTrip pages through a 1500-row result and checks
// the concatenated pages reproduce the unpaged response exactly: same
// rows, same order, no duplicates, no gaps, cursor absent on the last
// page.
func TestPaginationRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	code, full := postPage(t, ts.URL, "chain", chainAll, 0, "")
	if code != http.StatusOK {
		t.Fatalf("unpaged: status %d: %v", code, full)
	}
	want := full["rows"].([]interface{})
	if len(want) != 1500 {
		t.Fatalf("unpaged rows = %d, want 1500", len(want))
	}
	if _, ok := full["next_cursor"]; ok {
		t.Fatal("unpaged response carries a cursor")
	}

	var got []interface{}
	cursor := ""
	pages := 0
	for {
		code, out := postPage(t, ts.URL, "chain", chainAll, 400, cursor)
		if code != http.StatusOK {
			t.Fatalf("page %d: status %d: %v", pages, code, out)
		}
		rows := out["rows"].([]interface{})
		got = append(got, rows...)
		pages++
		next, _ := out["next_cursor"].(string)
		if next == "" {
			if len(rows) == 400 && len(got) < len(want) {
				t.Fatalf("page %d full but no continuation cursor", pages)
			}
			break
		}
		if len(rows) != 400 {
			t.Fatalf("page %d: %d rows, want 400", pages, len(rows))
		}
		cursor = next
		if pages > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if pages != 4 {
		t.Fatalf("paged through %d pages, want 4", pages)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged rows differ from unpaged: %d vs %d rows", len(got), len(want))
	}
}

// TestPaginationEdgeCases covers the window-boundary contract: limit
// overshoot, continuation without a limit, malformed tokens, and tokens
// bound to a different query.
func TestPaginationEdgeCases(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	// Overshoot: limit beyond the result returns everything, no cursor.
	code, out := postPage(t, ts.URL, "chain", chainAll, 5000, "")
	if code != http.StatusOK {
		t.Fatalf("overshoot: status %d: %v", code, out)
	}
	if n := len(out["rows"].([]interface{})); n != 1500 {
		t.Fatalf("overshoot rows = %d, want 1500", n)
	}
	if c, _ := out["next_cursor"].(string); c != "" {
		t.Fatal("overshoot page carries a continuation cursor")
	}

	// A cursor without a limit streams the whole remainder.
	code, out = postPage(t, ts.URL, "chain", chainAll, 100, "")
	if code != http.StatusOK {
		t.Fatalf("first page: status %d: %v", code, out)
	}
	cursor, _ := out["next_cursor"].(string)
	if cursor == "" {
		t.Fatal("first page returned no cursor")
	}
	code, out = postPage(t, ts.URL, "chain", chainAll, 0, cursor)
	if code != http.StatusOK {
		t.Fatalf("remainder: status %d: %v", code, out)
	}
	if n := len(out["rows"].([]interface{})); n != 1400 {
		t.Fatalf("remainder rows = %d, want 1400", n)
	}
	if c, _ := out["next_cursor"].(string); c != "" {
		t.Fatal("exhausted remainder still carries a cursor")
	}

	// Garbage token: 400 with an invalid-cursor error.
	code, out = postPage(t, ts.URL, "chain", chainAll, 10, "not!a!token")
	if code != http.StatusBadRequest {
		t.Fatalf("garbage cursor: status %d: %v", code, out)
	}
	if msg, _ := out["error"].(string); !strings.HasPrefix(msg, "invalid cursor") {
		t.Fatalf("garbage cursor error = %q", out["error"])
	}

	// Token bound to a different query: 400, not silent wrong rows.
	code, out = postPage(t, ts.URL, "chain", chainPair, 10, cursor)
	if code != http.StatusBadRequest {
		t.Fatalf("cross-query cursor: status %d: %v", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "different query") {
		t.Fatalf("cross-query cursor error = %q", out["error"])
	}

	// Token bound to a different dataset: also 400.
	code, out = postPage(t, ts.URL, "small", chainAll, 10, cursor)
	if code != http.StatusBadRequest {
		t.Fatalf("cross-dataset cursor: status %d: %v", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "dataset") {
		t.Fatalf("cross-dataset cursor error = %q", out["error"])
	}
}

// TestPaginationMaxRowsDefaultsPageSize checks MaxRows doubles as the
// page ceiling: an unlimited request gets MaxRows rows plus a cursor
// (instead of the unpaged path's silent truncation), and an explicit
// larger limit is clamped to it.
func TestPaginationMaxRowsDefaultsPageSize(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxRows: 300})

	code, out := postPage(t, ts.URL, "chain", chainAll, 1000, "")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if n := len(out["rows"].([]interface{})); n != 300 {
		t.Fatalf("clamped page = %d rows, want 300", n)
	}
	if c, _ := out["next_cursor"].(string); c == "" {
		t.Fatal("clamped page missing continuation cursor")
	}
}

// TestCursorExpiresOnGenerationBump is the 410 contract: a dataset
// mutation invalidates every outstanding cursor, because row positions
// are only stable within one hot-reload generation.
func TestCursorExpiresOnGenerationBump(t *testing.T) {
	ts, _ := newTestServer(t, Config{CacheBytes: 1 << 20})

	code, out := postPage(t, ts.URL, "small", abQuery, 1, "")
	if code != http.StatusOK {
		t.Fatalf("first page: status %d: %v", code, out)
	}
	cursor, _ := out["next_cursor"].(string)
	if cursor == "" {
		t.Fatal("first page returned no cursor")
	}

	code, upd := postJSON(t, ts.URL+"/update", map[string]interface{}{
		"dataset": "small",
		"nodes":   []map[string]interface{}{{"label": "c"}},
	})
	if code != http.StatusOK {
		t.Fatalf("update: status %d: %v", code, upd)
	}

	code, out = postPage(t, ts.URL, "small", abQuery, 1, cursor)
	if code != http.StatusGone {
		t.Fatalf("stale cursor: status %d, want 410: %v", code, out)
	}
	if msg, _ := out["error"].(string); !strings.HasPrefix(msg, "cursor expired: ") {
		t.Fatalf("stale cursor error = %q", out["error"])
	}
}

// postNDJSON performs one Accept: application/x-ndjson query and
// returns the response plus its body lines.
func postNDJSON(t *testing.T, url string, body interface{}) (*http.Response, []string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading NDJSON body: %v", err)
	}
	return resp, lines
}

// TestNDJSONFraming is the framing golden test: one valid JSON object
// per line — an exact head record, one {"row":[...]} per result, and a
// trailer with the row count and evaluation stats.
func TestNDJSONFraming(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	resp, lines := postNDJSON(t, ts.URL, map[string]interface{}{"dataset": "small", "query": abQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// abQuery on "small" has exactly 2 rows: head + 2 rows + trailer.
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4: %q", len(lines), lines)
	}
	// Head golden: field order and values are part of the contract.
	if want := `{"dataset":"small","columns":["x","y"],"cached":false}`; lines[0] != want {
		t.Fatalf("head line = %s\nwant        %s", lines[0], want)
	}
	for i, line := range lines {
		var obj map[string]interface{}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not a JSON object: %v\n%s", i, err, line)
		}
	}
	// Row lines carry exactly one key.
	for _, line := range lines[1:3] {
		var row struct {
			Row []float64 `json:"row"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil || len(row.Row) != 2 {
			t.Fatalf("malformed row line %s (err %v)", line, err)
		}
	}
	var trailer struct {
		Done       bool                   `json:"done"`
		Rows       int64                  `json:"rows"`
		NextCursor string                 `json:"next_cursor"`
		Stats      map[string]interface{} `json:"stats"`
		Error      string                 `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &trailer); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if !trailer.Done || trailer.Rows != 2 || trailer.Error != "" || trailer.NextCursor != "" {
		t.Fatalf("trailer = %+v", trailer)
	}
	if trailer.Stats == nil || trailer.Stats["results"].(float64) != 2 {
		t.Fatalf("trailer stats = %v", trailer.Stats)
	}

	// Rows must match the JSON path byte for byte.
	_, full := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "query": abQuery})
	for i, want := range full["rows"].([]interface{}) {
		var row struct {
			Row []interface{} `json:"row"`
		}
		json.Unmarshal([]byte(lines[1+i]), &row)
		if !reflect.DeepEqual(row.Row, want) {
			t.Fatalf("NDJSON row %d = %v, JSON path has %v", i, row.Row, want)
		}
	}
}

// TestNDJSONPagination checks the limit/cursor window applies to NDJSON
// too: a capped stream ends with a continuation cursor whose resumption
// yields the remaining rows.
func TestNDJSONPagination(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	resp, lines := postNDJSON(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": chainAll, "limit": 1000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 1002 { // head + 1000 rows + trailer
		t.Fatalf("got %d lines, want 1002", len(lines))
	}
	var trailer struct {
		Rows       int64  `json:"rows"`
		NextCursor string `json:"next_cursor"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Rows != 1000 || trailer.NextCursor == "" {
		t.Fatalf("trailer = %+v", trailer)
	}

	resp, lines = postNDJSON(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": chainAll, "cursor": trailer.NextCursor,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status %d", resp.StatusCode)
	}
	if len(lines) != 502 { // head + 500 remaining + trailer
		t.Fatalf("resume got %d lines, want 502", len(lines))
	}

	// Batch NDJSON is refused up front.
	resp, lines = postNDJSON(t, ts.URL, map[string]interface{}{
		"dataset": "small", "queries": []string{abQuery, abQuery},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch NDJSON: status %d, body %q", resp.StatusCode, lines)
	}
}

// TestBatchEntriesDistinctLimitsNotDeduped is the dedup-key fix: two
// batch entries with identical canonical text but different result
// windows must answer independently — the follower must not receive the
// leader's page.
func TestBatchEntriesDistinctLimitsNotDeduped(t *testing.T) {
	ts, _ := newTestServer(t, Config{CacheBytes: 1 << 20})

	code, out := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain",
		"entries": []map[string]interface{}{
			{"query": chainAll},
			{"query": chainAll, "limit": 5},
			{"query": chainAll, "limit": 5},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	results := out["results"].([]interface{})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	r0 := results[0].(map[string]interface{})
	r1 := results[1].(map[string]interface{})
	r2 := results[2].(map[string]interface{})
	if n := len(r0["rows"].([]interface{})); n != 1500 {
		t.Fatalf("unlimited entry got %d rows, want 1500", n)
	}
	if n := len(r1["rows"].([]interface{})); n != 5 {
		t.Fatalf("limit=5 entry got %d rows, want 5 — deduped onto the unlimited leader?", n)
	}
	if c, _ := r1["next_cursor"].(string); c == "" {
		t.Fatal("limit=5 entry missing continuation cursor")
	}
	// Identical window → still deduped onto its leader.
	if cached, _ := r2["cached"].(bool); !cached {
		t.Fatal("identical limit=5 entries were not deduped")
	}
	if n := len(r2["rows"].([]interface{})); n != 5 {
		t.Fatalf("deduped entry got %d rows, want 5", n)
	}
}

// TestNDJSONClientDisconnectReleasesSlot abandons a huge NDJSON stream
// after the first bytes and checks the worker slot comes back: with a
// single worker, a follow-up query must succeed promptly instead of
// queueing behind a zombie drain.
func TestNDJSONClientDisconnectReleasesSlot(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1, StreamBuffer: 16, MaxTimeout: time.Minute})

	// The chain pair query enumerates ~1.1M tuples — far more than the
	// client reads before hanging up.
	body, _ := json.Marshal(map[string]interface{}{
		"dataset": "chain", "query": chainPair, "timeout_ms": 60000,
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	resp.Body.Close() // hang up mid-stream

	// The server notices on its next write/poll; the slot must free in
	// time for this query to pass admission (Workers=1, QueueDepth=1).
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "query": abQuery})
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker slot never freed after disconnect: status %d: %v", code, out)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
