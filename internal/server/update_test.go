package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"gtpq/internal/delta"
)

func postJSON(t *testing.T, url string, body interface{}) (int, map[string]interface{}) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// rowCount runs the a→b pair query and returns the row count.
func rowCount(t *testing.T, url string) (int, bool) {
	t.Helper()
	code, out := postQuery(t, url, map[string]interface{}{"dataset": "small", "query": abQuery})
	if code != http.StatusOK {
		t.Fatalf("query: status %d: %v", code, out)
	}
	rows := out["rows"].([]interface{})
	cached, _ := out["cached"].(bool)
	return len(rows), cached
}

// TestUpdateServedImmediately is the acceptance path: POST /update →
// the very next query reflects the new vertices and edges, the dataset
// generation advances, and a warm result cache never serves the
// pre-update answer.
func TestUpdateServedImmediately(t *testing.T) {
	ts, s := newTestServer(t, Config{CacheBytes: 1 << 20})

	generation := func() float64 {
		resp, err := http.Get(ts.URL + "/datasets")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Datasets []map[string]interface{} `json:"datasets"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		for _, d := range out.Datasets {
			if d["name"] == "small" {
				gen, _ := d["generation"].(float64)
				return gen
			}
		}
		t.Fatal("dataset small missing from listing")
		return 0
	}

	// Warm the cache with the pre-update answer.
	if n, _ := rowCount(t, ts.URL); n != 2 {
		t.Fatalf("pre-update rows = %d, want 2", n)
	}
	if n, cached := rowCount(t, ts.URL); n != 2 || !cached {
		t.Fatalf("pre-update warm query: rows=%d cached=%v", n, cached)
	}
	genBefore := generation()

	// Append one b-labeled vertex and an edge from the a at id 4.
	code, out := postJSON(t, ts.URL+"/update", map[string]interface{}{
		"dataset": "small",
		"nodes":   []map[string]interface{}{{"label": "b", "attrs": map[string]interface{}{"year": 2026}}},
		"edges":   []map[string]interface{}{{"from": 4, "to": 6}},
	})
	if code != http.StatusOK {
		t.Fatalf("update: status %d: %v", code, out)
	}
	if got := out["pending_ops"].(float64); got != 2 {
		t.Fatalf("pending_ops = %v, want 2", got)
	}
	if out["compacted"].(bool) {
		t.Fatal("update auto-compacted with CompactAfter unset")
	}

	// The next query sees the new pair immediately — the cached
	// 2-row answer belongs to the previous generation.
	if n, cached := rowCount(t, ts.URL); n != 3 || cached {
		t.Fatalf("post-update query: rows=%d cached=%v, want 3 fresh rows", n, cached)
	}
	if genAfter := generation(); genAfter <= genBefore {
		t.Fatalf("generation %v did not advance past %v", genAfter, genBefore)
	}
	// And the update survives on disk for the next process.
	logPath := filepath.Join(s.cat.Dir(), "small"+delta.LogSuffix)
	if _, err := os.Stat(logPath); err != nil {
		t.Fatalf("delta log not persisted: %v", err)
	}

	// /stats reports the write-path counters.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if got := stats["updates"].(float64); got != 1 {
		t.Fatalf("stats updates = %v", got)
	}
	if got := stats["pending_deltas"].(float64); got != 2 {
		t.Fatalf("stats pending_deltas = %v", got)
	}
}

// TestUpdateValidation covers the rejection paths: unknown dataset,
// empty batch, out-of-range endpoints, bad attribute types.
func TestUpdateValidation(t *testing.T) {
	ts, s := newTestServer(t, Config{})
	cases := []map[string]interface{}{
		{"dataset": "nope", "edges": []map[string]interface{}{{"from": 0, "to": 1}}},
		{"dataset": "small"},
		{"dataset": "small", "edges": []map[string]interface{}{{"from": 0, "to": 999}}},
		{"dataset": "small", "edges": []map[string]interface{}{{"from": -1, "to": 0}}},
		{"dataset": "small", "nodes": []map[string]interface{}{{"label": "a", "attrs": map[string]interface{}{"bad": []int{1}}}}},
	}
	for i, body := range cases {
		code, out := postJSON(t, ts.URL+"/update", body)
		if code == http.StatusOK {
			t.Fatalf("case %d accepted: %v", i, out)
		}
	}
	if got := s.updates.Load(); got != 0 {
		t.Fatalf("updates counter = %d after rejections", got)
	}
	// The dataset still answers and holds no deltas.
	if n, _ := rowCount(t, ts.URL); n != 2 {
		t.Fatalf("rows after rejected updates = %d", n)
	}
}

// TestUpdateAutoCompaction drives pending mutations across the
// -compact-after threshold: the triggering response reports the fold,
// the log disappears, pending counters reset, and answers include
// every applied edge.
func TestUpdateAutoCompaction(t *testing.T) {
	ts, s := newTestServer(t, Config{CompactAfter: 3})

	// Two single-edge updates stay under the threshold of 3...
	for i := 0; i < 2; i++ {
		code, out := postJSON(t, ts.URL+"/update", map[string]interface{}{
			"dataset": "small",
			"edges":   []map[string]interface{}{{"from": 4, "to": 1 + i}},
		})
		if code != http.StatusOK || out["compacted"].(bool) {
			t.Fatalf("update %d: status %d compacted=%v", i, code, out["compacted"])
		}
	}
	// ...the third crosses it.
	code, out := postJSON(t, ts.URL+"/update", map[string]interface{}{
		"dataset": "small",
		"edges":   []map[string]interface{}{{"from": 0, "to": 4}},
	})
	if code != http.StatusOK {
		t.Fatalf("triggering update: status %d: %v", code, out)
	}
	if !out["compacted"].(bool) {
		t.Fatalf("threshold update not compacted: %v", out)
	}
	if got := out["pending_ops"].(float64); got != 0 {
		t.Fatalf("pending_ops after compaction = %v", got)
	}
	logPath := filepath.Join(s.cat.Dir(), "small"+delta.LogSuffix)
	if _, err := os.Stat(logPath); !os.IsNotExist(err) {
		t.Fatalf("delta log survived compaction: %v", err)
	}
	if got := s.compactions.Load(); got != 1 {
		t.Fatalf("compactions counter = %d", got)
	}
	// 4→1 and 4→2 add two a→b pairs on top of the original two.
	if n, _ := rowCount(t, ts.URL); n != 4 {
		t.Fatalf("rows after compaction = %d, want 4", n)
	}
}
