package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/delta"
	"gtpq/internal/graph"
)

// POST /update appends one mutation batch to a dataset and serves it
// immediately:
//
//	{"dataset": "d",
//	 "nodes": [{"label": "person", "attrs": {"name": "x", "year": 2026}}],
//	 "edges": [{"from": 12, "to": 9034, "cross": true}]}
//
// New vertices are assigned ids in order after the dataset's current
// maximum; edges may reference them. The response reports the new
// catalog generation (the result cache keys on it, so stale answers
// are structurally impossible) and the pending-delta counters; with
// -compact-after configured, the server folds the delta log into a
// fresh snapshot once pending mutations cross the threshold and the
// response notes it. Updates pass through the same admission-controlled
// worker pool as queries — heavy write traffic sheds with 429 instead
// of stalling reads.

// updateRequest is the POST /update body.
type updateRequest struct {
	Dataset string       `json:"dataset"`
	Nodes   []updateNode `json:"nodes,omitempty"`
	Edges   []updateEdge `json:"edges,omitempty"`
}

type updateNode struct {
	Label string                 `json:"label"`
	Attrs map[string]interface{} `json:"attrs,omitempty"`
}

type updateEdge struct {
	From  int64 `json:"from"`
	To    int64 `json:"to"`
	Cross bool  `json:"cross,omitempty"`
}

// updateResponse reports the applied update.
type updateResponse struct {
	Dataset    string `json:"dataset"`
	Generation uint64 `json:"generation"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	// PendingOps / PendingBatches count everything applied since the
	// last snapshot or compaction, this update included.
	PendingOps     int  `json:"pending_ops"`
	PendingBatches int  `json:"pending_batches"`
	Compacted      bool `json:"compacted"`
	// CompactError reports a failed auto-compaction attempt (the update
	// itself succeeded and is durable).
	CompactError string  `json:"compact_error,omitempty"`
	ApplyMillis  float64 `json:"apply_ms"`
}

// toBatch validates and converts the wire shape.
func (req *updateRequest) toBatch() (delta.Batch, error) {
	var b delta.Batch
	for i, n := range req.Nodes {
		na := delta.NodeAdd{Label: n.Label}
		if len(n.Attrs) > 0 {
			na.Attrs = make(graph.Attrs, len(n.Attrs))
			for k, v := range n.Attrs {
				switch val := v.(type) {
				case string:
					na.Attrs[k] = graph.StrV(val)
				case float64:
					na.Attrs[k] = graph.NumV(val)
				default:
					return b, fmt.Errorf("node %d attr %q: value must be a string or number", i, k)
				}
			}
		}
		b.Nodes = append(b.Nodes, na)
	}
	for i, e := range req.Edges {
		if e.From < 0 || e.To < 0 || e.From > int64(^uint32(0)>>1) || e.To > int64(^uint32(0)>>1) {
			return b, fmt.Errorf("edge %d: endpoints [%d %d] out of range", i, e.From, e.To)
		}
		b.Edges = append(b.Edges, delta.EdgeAdd{
			From: graph.NodeID(e.From), To: graph.NodeID(e.To), Cross: e.Cross,
		})
	}
	if b.Empty() {
		return b, fmt.Errorf("update mutates nothing: set \"nodes\" and/or \"edges\"")
	}
	return b, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.cfg.ReadOnly {
		// A replica's datasets advance only through its tailer; a
		// client write here would fork its log from the primary's.
		httpError(w, http.StatusForbidden, "read-only replica: send updates to the primary")
		return
	}
	var req updateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err))
		return
	}
	if req.Dataset == "" {
		httpError(w, http.StatusBadRequest, "missing \"dataset\"")
		return
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.dataset = req.Dataset
	}
	b, err := req.toBatch()
	if err != nil {
		s.updateFailures.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Updates compete with queries for worker slots: building the
	// extended graph and overlay is real work, and shedding writes
	// under overload beats stalling everything.
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	if err := s.admit(ctx); err != nil {
		httpError(w, errorStatus(err.Error()), err.Error())
		return
	}
	defer s.done()

	start := time.Now()
	ds, err := s.cat.ApplyDelta(req.Dataset, b)
	if err != nil {
		s.updateFailures.Add(1)
		// Internal faults (a failed fsync, a full disk, shutdown) are
		// the server's problem, not the caller's.
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, catalog.ErrUnknownDataset):
			status = http.StatusNotFound // same class as /query's Acquire
		case errors.Is(err, delta.ErrInvalidBatch):
			status = http.StatusBadRequest
		case catalog.IsReloadRace(err):
			// Transient: the dataset hot-reloaded underneath every
			// retry; the client should resubmit, nothing is wrong with
			// the request.
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	s.updates.Add(1)
	resp := updateResponse{
		Dataset:        req.Dataset,
		Generation:     ds.Generation,
		Nodes:          len(b.Nodes),
		Edges:          len(b.Edges),
		PendingOps:     ds.PendingDeltas,
		PendingBatches: ds.DeltaBatches,
	}
	ds.Release()

	if s.cfg.CompactAfter > 0 && resp.PendingOps >= s.cfg.CompactAfter {
		dsc, cerr := s.cat.Compact(req.Dataset)
		if cerr == nil {
			s.compactions.Add(1)
			resp.Compacted = true
			resp.Generation = dsc.Generation
			resp.PendingOps = dsc.PendingDeltas
			resp.PendingBatches = dsc.DeltaBatches
			dsc.Release()
		} else {
			// A failed auto-compaction is not a failed update — the
			// batch is durable and serving, the next update retries the
			// fold — but it must not fail silently: a dataset whose
			// folds keep failing grows its overlay without bound. The
			// response names the error and /stats counts it.
			s.compactFailures.Add(1)
			resp.CompactError = cerr.Error()
		}
	}
	resp.ApplyMillis = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}
