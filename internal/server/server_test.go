package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/gen"
	"gtpq/internal/graph"
	"gtpq/internal/graphio"
	"gtpq/internal/obs"
	"gtpq/internal/shard"
)

// newTestServer spins a full stack — catalog directory, server,
// httptest listener on a random port — with two datasets: "small" (a
// 6-node toy) and "chain" (a 1500-node path of identical labels whose
// pair query enumerates ~1.1M tuples, used to exercise deadlines).
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, g *graph.Graph) {
		var buf bytes.Buffer
		if err := graphio.Save(&buf, g); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	small := graph.New(6, 6)
	for _, l := range []string{"a", "b", "b", "c", "a", "c"} {
		small.AddNode(l, nil)
	}
	for _, e := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {4, 5}, {2, 3}} {
		small.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	small.Freeze()
	write("small.json", small)

	const n = 1500
	chain := graph.New(n, n-1)
	for i := 0; i < n; i++ {
		chain.AddNode("a", nil)
	}
	for i := 0; i < n-1; i++ {
		chain.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	chain.Freeze()
	write("chain.json", chain)

	cat, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cat, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func postQuery(t *testing.T, url string, body interface{}) (int, map[string]interface{}) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

const abQuery = "node x label=a output\nnode y label=b parent=x edge=ad output"

// TestServeSingleQuery covers the basic single-query happy path plus
// /healthz and /datasets.
func TestServeSingleQuery(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	code, out := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "small",
		"query":   abQuery,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	rows := out["rows"].([]interface{})
	// Matches: x=0 with y∈{1,2}; node 4 has no b below it.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if cols := out["columns"].([]interface{}); len(cols) != 2 || cols[0] != "x" || cols[1] != "y" {
		t.Fatalf("columns = %v", cols)
	}
	if out["stats"].(map[string]interface{})["results"].(float64) != 2 {
		t.Fatalf("stats = %v", out["stats"])
	}

	// /datasets lists both datasets, "small" loaded.
	dresp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Datasets []catalog.Info `json:"datasets"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if len(dl.Datasets) != 2 || dl.Datasets[0].Name != "chain" || dl.Datasets[1].Name != "small" {
		t.Fatalf("datasets = %+v", dl.Datasets)
	}
	if !dl.Datasets[1].Loaded || dl.Datasets[0].Loaded {
		t.Fatalf("load state = %+v", dl.Datasets)
	}
}

// TestServeErrors covers the failure statuses: unknown dataset (404),
// bad query (400), malformed body (400).
func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	if code, _ := postQuery(t, ts.URL, map[string]interface{}{"dataset": "nope", "query": abQuery}); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", code)
	}
	code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "query": "bogus directive"})
	if code != http.StatusBadRequest || !strings.Contains(out["error"].(string), "unknown directive") {
		t.Fatalf("bad query: %d %v", code, out)
	}
	if code, _ := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small"}); code != http.StatusBadRequest {
		t.Fatalf("missing query: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
}

// TestServeConcurrentBatch fires concurrent batch requests and checks
// every item of every batch answers correctly.
func TestServeConcurrentBatch(t *testing.T) {
	ts, s := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	queries := []string{
		abQuery,
		"node x label=a output",
		"node x label=c output\npnode y label=b parent=x edge=ad\npred x: !y",
	}
	wantRows := []int{2, 2, 2} // (x,y) pairs (0,1),(0,2); a-nodes 0,4; both c-nodes lack a b descendant

	// Compute expected counts once through the API itself.
	code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "queries": queries})
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %v", code, out)
	}
	first := out["results"].([]interface{})
	if len(first) != len(queries) {
		t.Fatalf("batch returned %d results", len(first))
	}
	for i, r := range first {
		rm := r.(map[string]interface{})
		if e, ok := rm["error"]; ok && e != "" {
			t.Fatalf("batch item %d error: %v", i, e)
		}
		if got := len(rm["rows"].([]interface{})); got != wantRows[i] {
			t.Fatalf("batch item %d: %d rows, want %d", i, got, wantRows[i])
		}
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for cidx := 0; cidx < clients; cidx++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				code, out := postQuery(t, ts.URL, map[string]interface{}{
					"dataset": "small", "queries": queries,
				})
				if code != http.StatusOK {
					errs <- fmt.Sprintf("status %d", code)
					return
				}
				for i, r := range out["results"].([]interface{}) {
					rm := r.(map[string]interface{})
					if got := len(rm["rows"].([]interface{})); got != wantRows[i] {
						errs <- fmt.Sprintf("item %d: %d rows, want %d", i, got, wantRows[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if s.queries.Load() == 0 || s.queued.Load() != 0 {
		t.Fatalf("counters: queries=%d in_flight=%d", s.queries.Load(), s.queued.Load())
	}
}

// TestServeDeadlineCancelsEvaluation is the acceptance check: a
// per-request deadline aborts a long evaluation (the ~1.1M-tuple pair
// query on the chain dataset) and reports 504, promptly.
func TestServeDeadlineCancelsEvaluation(t *testing.T) {
	ts, s := newTestServer(t, Config{Workers: 2})

	// Warm the dataset so index build time is not part of the measure.
	code, _ := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": "node x label=a output", "timeout_ms": 30000,
	})
	if code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	pair := "node x label=a output\nnode y label=a parent=x edge=ad output"
	start := time.Now()
	code, out := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": pair, "timeout_ms": 30,
	})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %v", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("error = %q", msg)
	}
	// The full enumeration takes orders of magnitude longer than this.
	if elapsed > 5*time.Second {
		t.Fatalf("deadline request took %v", elapsed)
	}
	if s.timeouts.Load() == 0 {
		t.Fatal("timeout counter not incremented")
	}

	// Deadline errors inside a batch surface per item, not per request.
	code, out = postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "queries": []string{"node x label=a output", pair}, "timeout_ms": 30,
	})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	items := out["results"].([]interface{})
	fastErr, _ := items[0].(map[string]interface{})["error"].(string)
	slowErr, _ := items[1].(map[string]interface{})["error"].(string)
	if slowErr == "" || !strings.Contains(slowErr, "deadline") {
		t.Fatalf("slow item error = %q", slowErr)
	}
	_ = fastErr // the cheap item may or may not finish within 30ms under -race; either is fine
}

// TestServeShardedDataset is the scatter-gather e2e: a dataset stored
// as a sharded directory answers /query exactly like the same graph
// stored flat, and /datasets and /stats report shard counts and
// per-shard timings.
func TestServeShardedDataset(t *testing.T) {
	dir := t.TempDir()
	g := gen.Forest(rand.New(rand.NewSource(21)), 6, 12, 20, []string{"a", "b", "c"})
	var buf bytes.Buffer
	if err := graphio.Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "flat.json"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	plan, err := shard.Partition(g, 3, shard.ModeWCC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.WriteDir(filepath.Join(dir, "parted"), "parted", g, plan, shard.Options{}); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(cat, Config{}).Handler())
	defer ts.Close()

	for _, q := range []string{
		"node x label=a output",
		abQuery,
		"node x label=c output\npnode y label=b parent=x edge=ad\npred x: !y",
	} {
		codeF, outF := postQuery(t, ts.URL, map[string]interface{}{"dataset": "flat", "query": q})
		codeS, outS := postQuery(t, ts.URL, map[string]interface{}{"dataset": "parted", "query": q})
		if codeF != http.StatusOK || codeS != http.StatusOK {
			t.Fatalf("status flat=%d sharded=%d (%v / %v)", codeF, codeS, outF, outS)
		}
		fr, _ := json.Marshal(outF["rows"])
		sr, _ := json.Marshal(outS["rows"])
		if !bytes.Equal(fr, sr) {
			t.Fatalf("query %q: sharded rows differ\nflat    %s\nsharded %s", q, fr, sr)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ShardedDatasets int            `json:"sharded_datasets"`
		Datasets        []catalog.Info `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ShardedDatasets != 1 {
		t.Fatalf("sharded_datasets = %d", st.ShardedDatasets)
	}
	var parted *catalog.Info
	for i := range st.Datasets {
		if st.Datasets[i].Name == "parted" {
			parted = &st.Datasets[i]
		}
	}
	if parted == nil || parted.Shards != 3 || parted.ShardMode != "wcc" {
		t.Fatalf("parted info = %+v", parted)
	}
	if len(parted.ShardInfo) != 3 {
		t.Fatalf("shard_info = %+v", parted.ShardInfo)
	}
	var evals int64
	for _, si := range parted.ShardInfo {
		evals += si.Evals
	}
	if evals == 0 {
		t.Fatal("per-shard timings absent from /stats")
	}
}

// TestStatsConsistentUnderLoad hammers GET /stats while batches are in
// flight: the regression test for the counter-snapshot path — every
// read goes through one snapshotCounters call, raced here under -race,
// and the reported values must stay within the pool's invariants.
func TestStatsConsistentUnderLoad(t *testing.T) {
	ts, s := newTestServer(t, Config{Workers: 2, QueueDepth: 64})
	queries := []string{abQuery, "node x label=a output", abQuery}

	stop := make(chan struct{})
	var producers sync.WaitGroup
	for c := 0; c < 4; c++ {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "queries": queries})
				}
			}
		}()
	}

	cfgMax := int64(s.cfg.Workers + s.cfg.QueueDepth)
	for i := 0; i < 50; i++ {
		// The same hammer covers /metrics: every scrape must be a valid
		// exposition whose histogram invariants (cumulative buckets,
		// _count == +Inf) hold even while Observe races the scrape —
		// each child is snapshotted atomically, never mid-update.
		mresp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateExposition(mresp.Body); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		mresp.Body.Close()

		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Requests int64 `json:"requests"`
			Queries  int64 `json:"queries"`
			Rejected int64 `json:"rejected"`
			Timeouts int64 `json:"timeouts"`
			Failures int64 `json:"failures"`
			InFlight int64 `json:"in_flight"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.InFlight < 0 || out.InFlight > cfgMax+1 {
			t.Fatalf("in_flight = %d outside [0, %d]", out.InFlight, cfgMax)
		}
		if out.Requests < 0 || out.Queries < 0 || out.Rejected < 0 || out.Timeouts < 0 || out.Failures < 0 {
			t.Fatalf("negative counter in %+v", out)
		}
		if out.Rejected+out.Timeouts+out.Failures > out.Queries+out.Requests {
			t.Fatalf("failure counters exceed traffic: %+v", out)
		}
	}
	close(stop)
	producers.Wait()

	// Quiesced: in-flight must drain to zero.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in_flight stuck at %d after drain", s.queued.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeAdmissionControl floods a 1-worker, 1-slot-queue server
// with slow queries and checks overflow is shed with 429 instead of
// piling up.
func TestServeAdmissionControl(t *testing.T) {
	ts, s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: 5 * time.Second})
	pair := "node x label=a output\nnode y label=a parent=x edge=ad output"

	// Warm up (loads + indexes the dataset).
	postQuery(t, ts.URL, map[string]interface{}{"dataset": "chain", "query": "node x label=a output"})

	const clients = 8
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postQuery(t, ts.URL, map[string]interface{}{
				"dataset": "chain", "query": pair, "timeout_ms": 400,
			})
		}(i)
	}
	wg.Wait()
	var rejected int
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			rejected++
		}
	}
	// 1 running + 1 queued can be admitted; with 8 simultaneous slow
	// queries at least some must have been shed.
	if rejected == 0 {
		t.Fatalf("no request was shed: codes=%v rejected_counter=%d", codes, s.rejected.Load())
	}
}
