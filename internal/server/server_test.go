package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/graph"
	"gtpq/internal/graphio"
)

// newTestServer spins a full stack — catalog directory, server,
// httptest listener on a random port — with two datasets: "small" (a
// 6-node toy) and "chain" (a 1500-node path of identical labels whose
// pair query enumerates ~1.1M tuples, used to exercise deadlines).
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, g *graph.Graph) {
		var buf bytes.Buffer
		if err := graphio.Save(&buf, g); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	small := graph.New(6, 6)
	for _, l := range []string{"a", "b", "b", "c", "a", "c"} {
		small.AddNode(l, nil)
	}
	for _, e := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {4, 5}, {2, 3}} {
		small.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	small.Freeze()
	write("small.json", small)

	const n = 1500
	chain := graph.New(n, n-1)
	for i := 0; i < n; i++ {
		chain.AddNode("a", nil)
	}
	for i := 0; i < n-1; i++ {
		chain.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	chain.Freeze()
	write("chain.json", chain)

	cat, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cat, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func postQuery(t *testing.T, url string, body interface{}) (int, map[string]interface{}) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

const abQuery = "node x label=a output\nnode y label=b parent=x edge=ad output"

// TestServeSingleQuery covers the basic single-query happy path plus
// /healthz and /datasets.
func TestServeSingleQuery(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	code, out := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "small",
		"query":   abQuery,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	rows := out["rows"].([]interface{})
	// Matches: x=0 with y∈{1,2}; node 4 has no b below it.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if cols := out["columns"].([]interface{}); len(cols) != 2 || cols[0] != "x" || cols[1] != "y" {
		t.Fatalf("columns = %v", cols)
	}
	if out["stats"].(map[string]interface{})["results"].(float64) != 2 {
		t.Fatalf("stats = %v", out["stats"])
	}

	// /datasets lists both datasets, "small" loaded.
	dresp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Datasets []catalog.Info `json:"datasets"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if len(dl.Datasets) != 2 || dl.Datasets[0].Name != "chain" || dl.Datasets[1].Name != "small" {
		t.Fatalf("datasets = %+v", dl.Datasets)
	}
	if !dl.Datasets[1].Loaded || dl.Datasets[0].Loaded {
		t.Fatalf("load state = %+v", dl.Datasets)
	}
}

// TestServeErrors covers the failure statuses: unknown dataset (404),
// bad query (400), malformed body (400).
func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	if code, _ := postQuery(t, ts.URL, map[string]interface{}{"dataset": "nope", "query": abQuery}); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", code)
	}
	code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "query": "bogus directive"})
	if code != http.StatusBadRequest || !strings.Contains(out["error"].(string), "unknown directive") {
		t.Fatalf("bad query: %d %v", code, out)
	}
	if code, _ := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small"}); code != http.StatusBadRequest {
		t.Fatalf("missing query: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
}

// TestServeConcurrentBatch fires concurrent batch requests and checks
// every item of every batch answers correctly.
func TestServeConcurrentBatch(t *testing.T) {
	ts, s := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	queries := []string{
		abQuery,
		"node x label=a output",
		"node x label=c output\npnode y label=b parent=x edge=ad\npred x: !y",
	}
	wantRows := []int{2, 2, 2} // (x,y) pairs (0,1),(0,2); a-nodes 0,4; both c-nodes lack a b descendant

	// Compute expected counts once through the API itself.
	code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "small", "queries": queries})
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %v", code, out)
	}
	first := out["results"].([]interface{})
	if len(first) != len(queries) {
		t.Fatalf("batch returned %d results", len(first))
	}
	for i, r := range first {
		rm := r.(map[string]interface{})
		if e, ok := rm["error"]; ok && e != "" {
			t.Fatalf("batch item %d error: %v", i, e)
		}
		if got := len(rm["rows"].([]interface{})); got != wantRows[i] {
			t.Fatalf("batch item %d: %d rows, want %d", i, got, wantRows[i])
		}
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for cidx := 0; cidx < clients; cidx++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				code, out := postQuery(t, ts.URL, map[string]interface{}{
					"dataset": "small", "queries": queries,
				})
				if code != http.StatusOK {
					errs <- fmt.Sprintf("status %d", code)
					return
				}
				for i, r := range out["results"].([]interface{}) {
					rm := r.(map[string]interface{})
					if got := len(rm["rows"].([]interface{})); got != wantRows[i] {
						errs <- fmt.Sprintf("item %d: %d rows, want %d", i, got, wantRows[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if s.queries.Load() == 0 || s.queued.Load() != 0 {
		t.Fatalf("counters: queries=%d in_flight=%d", s.queries.Load(), s.queued.Load())
	}
}

// TestServeDeadlineCancelsEvaluation is the acceptance check: a
// per-request deadline aborts a long evaluation (the ~1.1M-tuple pair
// query on the chain dataset) and reports 504, promptly.
func TestServeDeadlineCancelsEvaluation(t *testing.T) {
	ts, s := newTestServer(t, Config{Workers: 2})

	// Warm the dataset so index build time is not part of the measure.
	code, _ := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": "node x label=a output", "timeout_ms": 30000,
	})
	if code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	pair := "node x label=a output\nnode y label=a parent=x edge=ad output"
	start := time.Now()
	code, out := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": pair, "timeout_ms": 30,
	})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %v", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("error = %q", msg)
	}
	// The full enumeration takes orders of magnitude longer than this.
	if elapsed > 5*time.Second {
		t.Fatalf("deadline request took %v", elapsed)
	}
	if s.timeouts.Load() == 0 {
		t.Fatal("timeout counter not incremented")
	}

	// Deadline errors inside a batch surface per item, not per request.
	code, out = postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "queries": []string{"node x label=a output", pair}, "timeout_ms": 30,
	})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	items := out["results"].([]interface{})
	fastErr, _ := items[0].(map[string]interface{})["error"].(string)
	slowErr, _ := items[1].(map[string]interface{})["error"].(string)
	if slowErr == "" || !strings.Contains(slowErr, "deadline") {
		t.Fatalf("slow item error = %q", slowErr)
	}
	_ = fastErr // the cheap item may or may not finish within 30ms under -race; either is fine
}

// TestServeAdmissionControl floods a 1-worker, 1-slot-queue server
// with slow queries and checks overflow is shed with 429 instead of
// piling up.
func TestServeAdmissionControl(t *testing.T) {
	ts, s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: 5 * time.Second})
	pair := "node x label=a output\nnode y label=a parent=x edge=ad output"

	// Warm up (loads + indexes the dataset).
	postQuery(t, ts.URL, map[string]interface{}{"dataset": "chain", "query": "node x label=a output"})

	const clients = 8
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postQuery(t, ts.URL, map[string]interface{}{
				"dataset": "chain", "query": pair, "timeout_ms": 400,
			})
		}(i)
	}
	wg.Wait()
	var rejected int
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			rejected++
		}
	}
	// 1 running + 1 queued can be admitted; with 8 simultaneous slow
	// queries at least some must have been shed.
	if rejected == 0 {
		t.Fatalf("no request was shed: codes=%v rejected_counter=%d", codes, s.rejected.Load())
	}
}
