package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/graph"
	"gtpq/internal/graphio"
)

// newCacheTestServer builds a server with the result cache on, over a
// fresh directory the test can rewrite (for hot-reload checks).
// Returns the httptest server, the Server, and the dataset directory.
func newCacheTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server, string) {
	t.Helper()
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 1 << 20
	}
	dir := t.TempDir()
	writeLineGraph(t, dir, "d.json", []string{"a", "b", "b", "a", "b"})
	cat, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cat, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, dir
}

// writeLineGraph writes labels[i] chained 0->1->2->... as a dataset.
func writeLineGraph(t *testing.T, dir, file string, labels []string) {
	t.Helper()
	g := graph.New(len(labels), len(labels)-1)
	for _, l := range labels {
		g.AddNode(l, nil)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g.Freeze()
	var buf bytes.Buffer
	if err := graphio.Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// touchFuture pushes a file's mtime forward so the catalog's hot-reload
// check sees a new source generation even within one timestamp tick.
func touchFuture(t *testing.T, path string, d time.Duration) {
	t.Helper()
	future := time.Now().Add(d)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
}

// TestCachedFlagSingle: first request computes (cached:false), the
// repeat hits (cached:true) with identical rows, and /stats reports
// the cache counters.
func TestCachedFlagSingle(t *testing.T) {
	ts, s, _ := newCacheTestServer(t, Config{})
	var rows [2]string
	for i := 0; i < 2; i++ {
		code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": abQuery})
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, code, out)
		}
		if got := out["cached"].(bool); got != (i == 1) {
			t.Fatalf("request %d: cached = %v", i, got)
		}
		b, _ := json.Marshal(out["rows"])
		rows[i] = string(b)
	}
	if rows[0] != rows[1] || rows[0] == "[]" {
		t.Fatalf("cached rows diverged: %s vs %s", rows[0], rows[1])
	}
	st := s.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evals != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("cache stats = %+v", st)
	}

	// Different spelling, same canonical query: still a hit.
	respell := "# same query, different text\nnode x label=a output\n\nnode y label=b parent=x edge=ad output"
	code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": respell})
	if code != http.StatusOK || out["cached"].(bool) != true {
		t.Fatalf("respelled query missed the cache: %d %v", code, out["cached"])
	}
}

// TestBatchDedupesAndFlagsPerEntry: canonically-equal batch entries
// evaluate once; each entry reports its own cached flag.
func TestBatchDedupesAndFlagsPerEntry(t *testing.T) {
	ts, s, _ := newCacheTestServer(t, Config{})
	batch := []string{
		abQuery,
		"node x label=a output",
		abQuery, // duplicate of entry 0
		"# comment only changes the text\nnode x label=a output", // duplicate of entry 1
	}
	code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "queries": batch})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	results := out["results"].([]interface{})
	if len(results) != len(batch) {
		t.Fatalf("%d results", len(results))
	}
	var rowJSON []string
	for i, r := range results {
		rm := r.(map[string]interface{})
		if e, _ := rm["error"].(string); e != "" {
			t.Fatalf("entry %d error: %s", i, e)
		}
		b, _ := json.Marshal(rm["rows"])
		rowJSON = append(rowJSON, string(b))
		cached := rm["cached"].(bool)
		if want := i >= 2; cached != want {
			t.Fatalf("entry %d: cached = %v, want %v", i, cached, want)
		}
	}
	if rowJSON[0] != rowJSON[2] || rowJSON[1] != rowJSON[3] {
		t.Fatalf("deduplicated entries returned different rows: %v", rowJSON)
	}
	// The two unique queries each evaluated exactly once.
	if st := s.Cache().Stats(); st.Evals != 2 {
		t.Fatalf("evals = %d, want 2 (stats %+v)", st.Evals, st)
	}
	// Second identical batch: everything cached.
	_, out = postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "queries": batch})
	for i, r := range out["results"].([]interface{}) {
		if !r.(map[string]interface{})["cached"].(bool) {
			t.Fatalf("warm batch entry %d not cached", i)
		}
	}
	if st := s.Cache().Stats(); st.Evals != 2 {
		t.Fatalf("warm batch re-evaluated: evals = %d", st.Evals)
	}
}

// TestCancelledEvalNeverCached is the deadline regression test: a
// ctx-cancelled evaluation must not populate the cache with a partial
// (or empty) answer — the next request must evaluate fresh and return
// the full result.
func TestCancelledEvalNeverCached(t *testing.T) {
	dir := t.TempDir()
	// An 800-node single-label chain: the pair query enumerates ~320k
	// tuples, far beyond a 30ms deadline but fast enough to run to
	// completion under -race.
	labels := make([]string, 800)
	for i := range labels {
		labels[i] = "a"
	}
	writeLineGraph(t, dir, "chain.json", labels)
	cat, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cat, Config{Workers: 2, CacheBytes: 256 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the dataset (and prove the scan caches normally).
	if code, _ := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": "node x label=a output", "timeout_ms": 30000,
	}); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	pair := "node x label=a output\nnode y label=a parent=x edge=ad output"
	code, out := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": pair, "timeout_ms": 30,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline run: status %d: %v", code, out)
	}
	if st := s.Cache().Stats(); st.Entries != 1 { // only the warmup scan
		t.Fatalf("cancelled evaluation left %d entries", st.Entries)
	}

	// The full run must compute fresh (cached:false) and return every
	// row; the repeat must hit and agree byte-for-byte.
	code, full := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": pair, "timeout_ms": 60000,
	})
	if code != http.StatusOK {
		t.Fatalf("full run: status %d: %v", code, full)
	}
	if full["cached"].(bool) {
		t.Fatal("full run claims cached after a cancelled attempt")
	}
	wantRows := 800 * 799 / 2
	if n := int(full["stats"].(map[string]interface{})["results"].(float64)); n != wantRows {
		t.Fatalf("full run results = %d, want %d", n, wantRows)
	}
	code, again := postQuery(t, ts.URL, map[string]interface{}{
		"dataset": "chain", "query": pair, "timeout_ms": 60000,
	})
	if code != http.StatusOK || !again["cached"].(bool) {
		t.Fatalf("repeat: status %d cached %v", code, again["cached"])
	}
	a, _ := json.Marshal(full["rows"])
	b, _ := json.Marshal(again["rows"])
	if !bytes.Equal(a, b) {
		t.Fatal("cached rows differ from computed rows")
	}
}

// TestCacheHammer is the satellite concurrency test (run under -race
// in CI): many goroutines hammer one dataset with an overlapping query
// set, asserting (a) hits+misses == cache requests, (b) singleflight
// coalescing kept evaluations below requests, and (c) a hot reload
// bumps the generation so no stale answer survives.
func TestCacheHammer(t *testing.T) {
	ts, s, dir := newCacheTestServer(t, Config{Workers: 4, QueueDepth: 256})
	queries := []string{
		abQuery,
		"node x label=a output",
		"node x label=b output",
		"node x label=a output\npnode y label=b parent=x edge=ad\npred x: !y",
	}

	const goroutines = 12
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := queries[(gi+i)%len(queries)]
				code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": q})
				if code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %v", code, out)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	const requests = goroutines * perG
	st := s.Cache().Stats()
	if st.Hits+st.Misses != requests {
		t.Fatalf("hits %d + misses %d != %d requests", st.Hits, st.Misses, requests)
	}
	if st.Evals >= requests {
		t.Fatalf("no coalescing/caching: evals %d >= requests %d", st.Evals, requests)
	}
	if st.Evals+st.Coalesced != st.Misses {
		t.Fatalf("misses %d != evals %d + coalesced %d", st.Misses, st.Evals, st.Coalesced)
	}

	// Hot reload with a different graph: b-nodes disappear, so a stale
	// cache would keep answering the b-scan with old rows.
	writeLineGraph(t, dir, "d.json", []string{"a", "a", "a"})
	touchFuture(t, filepath.Join(dir, "d.json"), 2*time.Second)
	code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": "node x label=b output"})
	if code != http.StatusOK {
		t.Fatalf("post-reload status %d", code)
	}
	if out["cached"].(bool) {
		t.Fatal("post-reload answer claims cached (stale generation served)")
	}
	if rows := out["rows"].([]interface{}); len(rows) != 0 {
		t.Fatalf("stale answer after reload: %v", rows)
	}
	// And the new generation caches independently.
	_, out = postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": "node x label=b output"})
	if !out["cached"].(bool) {
		t.Fatal("post-reload repeat did not cache")
	}
}

// TestCacheSingleflightColdHerd fires a herd at one cold query and
// requires exactly one evaluation.
func TestCacheSingleflightColdHerd(t *testing.T) {
	ts, s, _ := newCacheTestServer(t, Config{Workers: 2, QueueDepth: 64})
	const herd = 16
	var wg sync.WaitGroup
	rowJSON := make([]string, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, out := postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": abQuery, "timeout_ms": 30000})
			if code != http.StatusOK {
				t.Errorf("herd %d: status %d", i, code)
				return
			}
			b, _ := json.Marshal(out["rows"])
			rowJSON[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i := 1; i < herd; i++ {
		if rowJSON[i] != rowJSON[0] {
			t.Fatalf("herd member %d saw different rows", i)
		}
	}
	if st := s.Cache().Stats(); st.Evals != 1 {
		t.Fatalf("cold herd ran %d evaluations, want 1 (stats %+v)", st.Evals, st)
	}
}

// TestStatsAndDatasetsReportCache checks the counters surface through
// both endpoints.
func TestStatsAndDatasetsReportCache(t *testing.T) {
	ts, _, _ := newCacheTestServer(t, Config{})
	postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": abQuery})
	postQuery(t, ts.URL, map[string]interface{}{"dataset": "d", "query": abQuery})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Cache struct {
			Enabled bool  `json:"enabled"`
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Bytes   int64 `json:"bytes"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Cache.Enabled || st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Bytes <= 0 {
		t.Fatalf("/stats cache = %+v", st.Cache)
	}

	resp, err = http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Datasets []struct {
			Name  string `json:"name"`
			Cache *struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
				Bytes  int64 `json:"bytes"`
			} `json:"cache"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dl.Datasets) != 1 || dl.Datasets[0].Cache == nil {
		t.Fatalf("/datasets = %+v", dl.Datasets)
	}
	if c := dl.Datasets[0].Cache; c.Hits != 1 || c.Misses != 1 || c.Bytes <= 0 {
		t.Fatalf("/datasets cache = %+v", c)
	}

	// A cache-disabled server reports enabled:false and no per-dataset
	// section.
	tsOff, _ := newTestServer(t, Config{})
	resp, err = http.Get(tsOff.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stOff struct {
		Cache struct {
			Enabled bool `json:"enabled"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stOff); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stOff.Cache.Enabled {
		t.Fatal("cache-disabled server reports enabled")
	}
}
