// Package server exposes the GTPQ engine over HTTP/JSON for
// long-running serving:
//
//	POST /query     evaluate one query or a batch on a named dataset
//	GET  /datasets  list datasets and their load state
//	GET  /stats     server counters and configuration
//	GET  /healthz   liveness probe
//
// Evaluations run through an admission-controlled worker pool: at most
// Workers queries evaluate concurrently, at most QueueDepth more wait
// for a slot, and anything beyond that is rejected with 429 so heavy
// traffic degrades by shedding load instead of collapsing. Every
// request carries a deadline (client-chosen via timeout_ms, clamped to
// MaxTimeout) that cancels the evaluation itself through the engine's
// context-aware path — a stuck or oversized query stops consuming its
// worker slot the moment its deadline passes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/graph"
	"gtpq/internal/qlang"
)

// Config tunes the server; zero values take sensible defaults.
type Config struct {
	// Workers caps concurrent evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth caps evaluations waiting for a worker slot before
	// admission control rejects with 429 (default 4 × Workers).
	QueueDepth int
	// DefaultTimeout applies when a request names none (default 2s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (default 30s).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 4 MiB).
	MaxBodyBytes int64
	// MaxRows caps result rows returned per query; responses note
	// truncation. 0 means unlimited.
	MaxRows int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// Server handles the HTTP API over one dataset catalog.
type Server struct {
	cat   *catalog.Catalog
	cfg   Config
	sem   chan struct{} // worker slots
	start time.Time

	queued   atomic.Int64 // waiting + running admissions
	requests atomic.Int64
	queries  atomic.Int64
	rejected atomic.Int64
	timeouts atomic.Int64
	failures atomic.Int64
	rows     atomic.Int64
}

// New builds a server over cat.
func New(cat *catalog.Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cat:   cat,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		start: time.Now(),
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// errOverloaded is the admission-control rejection.
var errOverloaded = errors.New("server overloaded: worker pool and queue full")

// admit claims a worker slot, waiting at most until ctx's deadline and
// only if the wait queue has room.
func (s *Server) admit(ctx context.Context) error {
	if int(s.queued.Add(1)) > s.cfg.Workers+s.cfg.QueueDepth {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return errOverloaded
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return ctx.Err()
	}
}

// done releases the slot claimed by a successful admit.
func (s *Server) done() {
	<-s.sem
	s.queued.Add(-1)
}

// queryRequest is the POST /query body. Exactly one of Query/Queries
// must be set; Queries evaluates as a concurrent batch.
type queryRequest struct {
	Dataset   string   `json:"dataset"`
	Query     string   `json:"query,omitempty"`
	Queries   []string `json:"queries,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// queryResult is one evaluation outcome.
type queryResult struct {
	Columns   []string         `json:"columns,omitempty"`
	Rows      [][]graph.NodeID `json:"rows"`
	Truncated bool             `json:"truncated,omitempty"`
	Stats     *resultStats     `json:"stats,omitempty"`
	Error     string           `json:"error,omitempty"`
}

type resultStats struct {
	Input        int64   `json:"input"`
	IndexLookups int64   `json:"index_lookups"`
	Intermediate int64   `json:"intermediate"`
	Results      int64   `json:"results"`
	EvalMillis   float64 `json:"eval_ms"`
}


func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err))
		return
	}
	if req.Dataset == "" {
		httpError(w, http.StatusBadRequest, "missing \"dataset\"")
		return
	}
	single := req.Query != ""
	if single == (len(req.Queries) > 0) {
		httpError(w, http.StatusBadRequest, "set exactly one of \"query\" and \"queries\"")
		return
	}

	// Acquire before starting the clock: a cold dataset's load or
	// index build must not be charged against the query deadline.
	ds, err := s.cat.Acquire(req.Dataset)
	if err != nil {
		s.failures.Add(1)
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	defer ds.Release()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	sources := req.Queries
	if single {
		sources = []string{req.Query}
	}
	results := make([]queryResult, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			results[i] = s.evalOne(ctx, ds.Engine, src)
		}(i, src)
	}
	wg.Wait()

	if single {
		status := http.StatusOK
		if results[0].Error != "" {
			status = errorStatus(results[0].Error)
		}
		writeJSON(w, status, struct {
			Dataset string `json:"dataset"`
			queryResult
		}{req.Dataset, results[0]})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Dataset string        `json:"dataset"`
		Results []queryResult `json:"results"`
	}{req.Dataset, results})
}

// evalOne parses and evaluates one query through the worker pool,
// mapping every failure to the result's Error field. eng is either a
// single-graph engine or a sharded scatter-gather engine — the
// evaluation path is identical.
func (s *Server) evalOne(ctx context.Context, eng catalog.Engine, src string) queryResult {
	s.queries.Add(1)
	q, err := qlang.Parse(src)
	if err != nil {
		s.failures.Add(1)
		return queryResult{Error: err.Error()}
	}
	if err := s.admit(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Add(1)
		}
		return queryResult{Error: err.Error()}
	}
	defer s.done()

	start := time.Now()
	ans, st, err := eng.EvalStatsCtx(ctx, q)
	if err != nil {
		s.timeouts.Add(1)
		return queryResult{Error: err.Error()}
	}
	res := queryResult{
		Rows: ans.Tuples,
		Stats: &resultStats{
			Input:        st.Input,
			IndexLookups: st.Index,
			Intermediate: st.Intermediate,
			Results:      st.Results,
			EvalMillis:   float64(time.Since(start).Microseconds()) / 1000,
		},
	}
	for _, u := range ans.Out {
		res.Columns = append(res.Columns, q.Nodes[u].Name)
	}
	if s.cfg.MaxRows > 0 && len(res.Rows) > s.cfg.MaxRows {
		res.Rows = res.Rows[:s.cfg.MaxRows]
		res.Truncated = true
	}
	if res.Rows == nil {
		res.Rows = [][]graph.NodeID{} // encode as [] rather than null
	}
	s.rows.Add(int64(len(res.Rows)))
	return res
}

// errorStatus maps a single-query error string to an HTTP status.
func errorStatus(msg string) int {
	switch {
	case msg == errOverloaded.Error():
		return http.StatusTooManyRequests
	case msg == context.DeadlineExceeded.Error(), msg == context.Canceled.Error():
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest // parse/validation errors
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	infos, err := s.cat.List()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"datasets": infos})
}

// poolSnapshot is one consistent read of the worker-pool counters.
// Every field is captured through its atomic exactly once, in one
// place: /stats must never interleave direct counter reads with
// response building, or a burst of traffic between two reads shows
// impossible states (e.g. more timeouts than queries). The shape is a
// struct rather than ad-hoc map entries so a missed field is a compile
// error, not a silently absent stat.
type poolSnapshot struct {
	Requests int64 `json:"requests"`
	Queries  int64 `json:"queries"`
	Rejected int64 `json:"rejected"`
	Timeouts int64 `json:"timeouts"`
	Failures int64 `json:"failures"`
	Rows     int64 `json:"rows_returned"`
	InFlight int64 `json:"in_flight"`
}

// snapshotCounters captures all pool counters. The counters are
// per-field atomics, so each value was true at some instant during the
// call; cross-field sanity additionally needs a read order. Derived
// counters (rejected/timeouts/failures — each incremented only after
// its source counter) are read BEFORE their sources (queries, then
// requests): a derived value can then never exceed the source value
// read later, so a snapshot cannot show impossible states like more
// timeouts than queries, no matter how much traffic races the read.
func (s *Server) snapshotCounters() poolSnapshot {
	var snap poolSnapshot
	snap.Rejected = s.rejected.Load()
	snap.Timeouts = s.timeouts.Load()
	snap.Failures = s.failures.Load()
	snap.Rows = s.rows.Load()
	snap.InFlight = s.queued.Load()
	snap.Queries = s.queries.Load()
	snap.Requests = s.requests.Load()
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.snapshotCounters()
	infos, _ := s.cat.List()
	shardedDatasets := 0
	for _, info := range infos {
		if info.Shards > 0 {
			shardedDatasets++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"uptime_s": time.Since(s.start).Seconds(),
		"config": map[string]interface{}{
			"workers":            s.cfg.Workers,
			"queue_depth":        s.cfg.QueueDepth,
			"default_timeout_ms": s.cfg.DefaultTimeout.Milliseconds(),
			"max_timeout_ms":     s.cfg.MaxTimeout.Milliseconds(),
		},
		"requests":         snap.Requests,
		"queries":          snap.Queries,
		"rejected":         snap.Rejected,
		"timeouts":         snap.Timeouts,
		"failures":         snap.Failures,
		"rows_returned":    snap.Rows,
		"in_flight":        snap.InFlight,
		"sharded_datasets": shardedDatasets,
		"datasets":         infos,
	})
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
