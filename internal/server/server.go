// Package server exposes the GTPQ engine over HTTP/JSON for
// long-running serving:
//
//	POST /query      evaluate one query or a batch on a named dataset
//	POST /subscribe  standing query: SSE stream of result changes
//	POST /update     append vertices/edges to a dataset (served at once)
//	GET  /datasets   list datasets and their load state
//	GET  /stats      server counters and configuration
//	GET  /healthz    liveness probe
//
// Evaluations run through an admission-controlled worker pool: at most
// Workers queries evaluate concurrently, at most QueueDepth more wait
// for a slot, and anything beyond that is rejected with 429 so heavy
// traffic degrades by shedding load instead of collapsing. Every
// request carries a deadline (client-chosen via timeout_ms, clamped to
// MaxTimeout) that cancels the evaluation itself through the engine's
// context-aware path — a stuck or oversized query stops consuming its
// worker slot the moment its deadline passes.
//
// With CacheBytes set, a result cache (internal/qcache) sits in front
// of the pool: repeated queries against an unchanged dataset are
// answered from memory without taking a worker slot, concurrent
// identical misses coalesce into one evaluation, and batch requests
// deduplicate canonically-equal entries before evaluating. Cache keys
// carry the catalog's hot-reload generation, so a reloaded dataset
// can never serve stale answers; a context-cancelled evaluation never
// populates the cache. Responses report per-query `cached`.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/core"
	"gtpq/internal/graph"
	"gtpq/internal/gtea"
	"gtpq/internal/obs"
	"gtpq/internal/qcache"
	"gtpq/internal/qlang"
	"gtpq/internal/repl"
	"gtpq/internal/sub"
)

// Config tunes the server; zero values take sensible defaults.
type Config struct {
	// Workers caps concurrent evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth caps evaluations waiting for a worker slot before
	// admission control rejects with 429 (default 4 × Workers).
	QueueDepth int
	// DefaultTimeout applies when a request names none (default 2s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (default 30s).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 4 MiB).
	MaxBodyBytes int64
	// MaxRows caps result rows returned per query; responses note
	// truncation. Paged and NDJSON responses use it as the default (and
	// maximum) page size instead, handing back a continuation cursor. 0
	// means unlimited.
	MaxRows int
	// StreamBuffer sets how many NDJSON rows are written between
	// explicit flushes on streamed responses (default 256). Smaller
	// values lower time-to-first-byte jitter; larger ones amortize
	// syscalls.
	StreamBuffer int
	// CacheBytes bounds the result cache by the total bytes of cached
	// answers; 0 disables caching. Full answers are cached (MaxRows
	// truncation happens per response), keyed by (dataset, generation,
	// canonical query, index kind).
	CacheBytes int64
	// CompactAfter auto-compacts a dataset's delta log once its pending
	// mutation count reaches this threshold (checked after each
	// /update); 0 disables auto-compaction — deltas accumulate until an
	// explicit fold (gtpq-compact).
	CompactAfter int
	// CostQuota rejects a query with 429 (plus an X-GTPQ-Cost header)
	// when its estimated evaluation cost — the summed per-node candidate
	// estimates from the dataset's cardinality summary — exceeds this
	// value. The check runs before the query takes a worker slot; cache
	// hits are unaffected. 0 disables cost-based admission.
	CostQuota int64
	// Registry receives every server metric (scraped at GET /metrics);
	// nil creates a private registry. The cache and catalog register
	// their own families on the same registry.
	Registry *obs.Registry
	// SlowLogThreshold enables the slow-query ring log (GET
	// /debug/slowlog): queries at least this slow are recorded with
	// their plan summary and per-stage trace timings. 0 disables it.
	SlowLogThreshold time.Duration
	// SlowLogSize caps the ring (default 128 when the threshold is set).
	SlowLogSize int
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (method, path, status, latency, request ID, dataset, cost
	// estimate). Writes are serialized by the server.
	AccessLog io.Writer
	// AccessLogSample logs every Nth request (default 1: all).
	AccessLogSample int
	// ReadOnly rejects POST /update with 403. Replicas run read-only:
	// their datasets mutate only through the replication tailer, and a
	// client write landing on a replica would fork its history from the
	// primary's log.
	ReadOnly bool
	// ReadyCheck, when set, contributes to GET /readyz: ok=false (with
	// the not-ready dataset names) reports the process unfit for
	// routing. Replicas plug their tailer's lag check in here.
	ReadyCheck func() (ok bool, notReady []string)
	// MaxSubs caps concurrently attached standing-query streams (POST
	// /subscribe); beyond it new subscriptions are rejected with 429.
	// Default 1024.
	MaxSubs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 256
	}
	if c.SlowLogThreshold > 0 && c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	if c.AccessLogSample <= 0 {
		c.AccessLogSample = 1
	}
	return c
}

// Server handles the HTTP API over one dataset catalog.
type Server struct {
	cat     *catalog.Catalog
	cfg     Config
	sem     chan struct{} // worker slots
	cache   *qcache.Cache // nil when CacheBytes is 0
	start   time.Time
	reg     *obs.Registry
	slow    *obs.SlowLog // nil when SlowLogThreshold is 0
	replSrc *repl.Source // serves /repl/log and /repl/base
	subs    *sub.Registry

	queued atomic.Int64 // waiting + running admissions
	logMu  sync.Mutex   // serializes AccessLog writes
	logSeq atomic.Int64 // access-log sampling sequence

	// Serving counters, owned by the metrics registry (initMetrics);
	// /stats snapshots them and /metrics scrapes the same values.
	requests        *obs.Counter
	queries         *obs.Counter
	rejected        *obs.Counter
	costRejected    *obs.Counter
	costRejectedBy  *obs.CounterVec // by dataset
	timeouts        *obs.Counter
	failures        *obs.Counter
	rows            *obs.Counter
	updates         *obs.Counter
	updateFailures  *obs.Counter
	compactions     *obs.Counter
	compactFailures *obs.Counter
	indexLookups    *obs.Counter
	rowsStreamed    *obs.Counter
	streamBypass    *obs.Counter
	queryLatency    *obs.HistogramVec // by dataset, index kind
}

// New builds a server over cat.
func New(cat *catalog.Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cat:     cat,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		start:   time.Now(),
		reg:     reg,
		replSrc: &repl.Source{Cat: cat},
	}
	if cfg.SlowLogThreshold > 0 {
		s.slow = obs.NewSlowLog(cfg.SlowLogSize)
	}
	s.initMetrics()
	if cfg.CacheBytes > 0 {
		s.cache = qcache.New(cfg.CacheBytes)
		s.cache.Register(reg)
	}
	s.subs = sub.New(cat, sub.Config{
		MaxSubs:       cfg.MaxSubs,
		Registry:      reg,
		SlowLog:       s.slow,
		SlowThreshold: cfg.SlowLogThreshold,
	})
	cat.Register(reg)
	return s
}

// Subs exposes the standing-query registry (tests and embedders).
func (s *Server) Subs() *sub.Registry { return s.subs }

// CloseSubscriptions shuts the standing-query registry down, closing
// every attached SSE stream. Graceful shutdown calls it BEFORE the
// HTTP server's Shutdown — open event streams otherwise count as
// active connections and stall the drain until their clients leave.
func (s *Server) CloseSubscriptions() { s.subs.Close() }

// Registry exposes the server's metric registry (tests and embedders
// scrape it directly).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Cache exposes the result cache (nil when disabled); used by tests
// and metrics exporters.
func (s *Server) Cache() *qcache.Cache { return s.cache }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /subscribe", s.handleSubscribe)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	// /healthz is pure liveness (the process answers); /readyz is
	// readiness (every dataset loaded, replication within its lag
	// bound) — the router routes on the latter only.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /repl/log", s.replSrc.ServeLog)
	mux.HandleFunc("GET /repl/base", s.replSrc.ServeBase)
	return s.instrument(mux)
}

// errOverloaded is the admission-control rejection.
var errOverloaded = errors.New("server overloaded: worker pool and queue full")

// costPrefix opens every cost-rejection message; errorStatus keys the
// 429 mapping off it (the estimate and quota vary per rejection).
const costPrefix = "estimated cost "

// errCostExceeded is the estimate-driven admission rejection.
type errCostExceeded struct{ est, quota int64 }

func (e errCostExceeded) Error() string {
	return fmt.Sprintf("%s%d exceeds dataset quota %d", costPrefix, e.est, e.quota)
}

// costRejectFor returns (creating on first use) the named dataset's
// cost-rejection counter.
func (s *Server) costRejectFor(name string) *obs.Counter {
	return s.costRejectedBy.With(name)
}

// admit claims a worker slot, waiting at most until ctx's deadline and
// only if the wait queue has room.
func (s *Server) admit(ctx context.Context) error {
	if int(s.queued.Add(1)) > s.cfg.Workers+s.cfg.QueueDepth {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return errOverloaded
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return ctx.Err()
	}
}

// done releases the slot claimed by a successful admit.
func (s *Server) done() {
	<-s.sem
	s.queued.Add(-1)
}

// requestContext derives the evaluation context: the client-requested
// timeout (clamped to MaxTimeout) or the default.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), timeout)
}

// Drain waits until no admission is in flight (queued hits zero) or
// ctx expires. Graceful shutdown calls it after the HTTP server stops
// accepting, so every admitted evaluation and update runs to
// completion — and the catalog's delta logs can then be flushed with
// nothing left writing to them.
func (s *Server) Drain(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.queued.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d admissions still in flight: %w", s.queued.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

// queryRequest is the POST /query body. Exactly one of
// Query/Queries/Entries must be set; Queries and Entries evaluate as a
// concurrent batch (Entries additionally carries per-entry pagination).
// Limit and Cursor at the top level apply to every entry that does not
// override them.
type queryRequest struct {
	Dataset   string       `json:"dataset"`
	Query     string       `json:"query,omitempty"`
	Queries   []string     `json:"queries,omitempty"`
	Entries   []queryEntry `json:"entries,omitempty"`
	Limit     int          `json:"limit,omitempty"`
	Cursor    string       `json:"cursor,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// queryEntry is one batch entry with its own pagination window.
type queryEntry struct {
	Query  string `json:"query"`
	Limit  int    `json:"limit,omitempty"`
	Cursor string `json:"cursor,omitempty"`
}

// queryResult is one evaluation outcome.
type queryResult struct {
	Columns   []string         `json:"columns,omitempty"`
	Rows      [][]graph.NodeID `json:"rows"`
	Truncated bool             `json:"truncated,omitempty"`
	// NextCursor is the opaque continuation token of a paged response:
	// POSTing it back (with the same dataset and query) resumes the
	// result stream after this page's last row. Absent on the last page
	// and on unpaged responses. Tokens are generation-pinned — after a
	// dataset mutation they answer 410 Gone.
	NextCursor string `json:"next_cursor,omitempty"`
	// Cached reports the rows came without a fresh evaluation: a result
	// cache hit, a coalesced in-flight miss, or a deduplicated batch
	// entry sharing another entry's evaluation.
	Cached bool         `json:"cached"`
	Stats  *resultStats `json:"stats,omitempty"`
	// CostEstimate is the admission-time cost estimate (summed per-node
	// candidate estimates); present whenever the dataset carries a
	// cardinality summary, including on cost rejections.
	CostEstimate int64 `json:"cost_estimate,omitempty"`
	// Plan is the planner's record (chosen order, per-node kernel,
	// estimated vs actual cardinalities); only populated under ?debug=1
	// on fresh flat-dataset evaluations (sharded stats aggregate across
	// shards, whose per-shard plans differ).
	Plan  *gtea.PlanInfo `json:"plan,omitempty"`
	Error string         `json:"error,omitempty"`
	// RequestID echoes X-GTPQ-Request-ID and Trace carries the
	// per-stage span tree of this evaluation; both only under ?debug=1.
	RequestID string    `json:"request_id,omitempty"`
	Trace     *obs.Span `json:"trace,omitempty"`
}

type resultStats struct {
	Input        int64   `json:"input"`
	PruneInput   int64   `json:"prune_input"`
	EnumInput    int64   `json:"enum_input"`
	IndexLookups int64   `json:"index_lookups"`
	Intermediate int64   `json:"intermediate"`
	Results      int64   `json:"results"`
	EvalMillis   float64 `json:"eval_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err))
		return
	}
	if req.Dataset == "" {
		httpError(w, http.StatusBadRequest, "missing \"dataset\"")
		return
	}
	forms := 0
	for _, set := range []bool{req.Query != "", len(req.Queries) > 0, len(req.Entries) > 0} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		httpError(w, http.StatusBadRequest, "set exactly one of \"query\", \"queries\" and \"entries\"")
		return
	}
	single := req.Query != ""
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.dataset = req.Dataset
	}

	// Acquire before starting the clock: a cold dataset's load or
	// index build must not be charged against the query deadline.
	ds, err := s.cat.Acquire(req.Dataset)
	if err != nil {
		s.failures.Add(1)
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	defer ds.Release()

	// Normalize the three request forms into entries; top-level
	// limit/cursor fill per-entry gaps.
	entries := req.Entries
	switch {
	case single:
		entries = []queryEntry{{Query: req.Query, Limit: req.Limit, Cursor: req.Cursor}}
	case len(req.Queries) > 0:
		entries = make([]queryEntry, len(req.Queries))
		for i, src := range req.Queries {
			entries[i] = queryEntry{Query: src, Limit: req.Limit, Cursor: req.Cursor}
		}
	default:
		for i := range entries {
			if entries[i].Limit == 0 {
				entries[i].Limit = req.Limit
			}
			if entries[i].Cursor == "" {
				entries[i].Cursor = req.Cursor
			}
		}
	}
	debug := r.URL.Query().Get("debug") == "1"

	if wantsNDJSON(r) {
		if !single {
			httpError(w, http.StatusBadRequest, "NDJSON streaming supports single-query requests only")
			return
		}
		s.streamNDJSON(w, r, ds, req, entries[0], debug)
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	results := make([]queryResult, len(entries))

	// Parse and canonicalize up front, deduplicating canonically-equal
	// batch entries: N identical entries cost one evaluation (the rest
	// copy the leader's result). Entries only dedupe when their whole
	// result window matches — the same canonical text under different
	// limit or cursor values names a different page, never the leader's
	// rows. Misses on distinct entries still fan out concurrently
	// through the pool.
	type job struct {
		idx   int
		q     *core.Query
		canon string
		ent   queryEntry
	}
	type dedupKey struct {
		canon  string
		limit  int
		cursor string
	}
	var jobs []job
	leaders := map[dedupKey]int{} // result window -> leader index
	dups := map[int]int{}         // follower index -> leader index
	for i, ent := range entries {
		s.queries.Add(1)
		q, err := qlang.Parse(ent.Query)
		if err != nil {
			s.failures.Add(1)
			results[i] = queryResult{Error: err.Error()}
			continue
		}
		canon := qlang.Format(q)
		key := dedupKey{canon: canon, limit: ent.Limit, cursor: ent.Cursor}
		if li, ok := leaders[key]; ok {
			dups[i] = li
			continue
		}
		leaders[key] = i
		jobs = append(jobs, job{idx: i, q: q, canon: canon, ent: ent})
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			results[j.idx] = s.evalOne(ctx, ds, j.q, j.canon, j.ent, debug)
		}(j)
	}
	wg.Wait()
	for follower, leader := range dups {
		r := results[leader]
		if r.Error == "" {
			r.Cached = true // shared the leader's evaluation
		}
		results[follower] = r
	}

	if single {
		status := http.StatusOK
		if results[0].Error != "" {
			status = errorStatus(results[0].Error)
		}
		if results[0].CostEstimate > 0 {
			w.Header().Set("X-GTPQ-Cost", fmt.Sprintf("%d", results[0].CostEstimate))
		}
		writeJSON(w, status, struct {
			Dataset string `json:"dataset"`
			queryResult
		}{req.Dataset, results[0]})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Dataset string        `json:"dataset"`
		Results []queryResult `json:"results"`
	}{req.Dataset, results})
}

// evalOne answers one parsed query, consulting the result cache before
// the worker pool: hits (and misses coalesced onto an in-flight
// evaluation) bypass admission entirely and never consume a slot. The
// dataset's engine is either single-graph or sharded scatter-gather —
// for sharded datasets the cached value is the merged answer, so a hit
// skips the whole fan-out. Every failure maps to the result's Error
// field; a failed (e.g. deadline-cancelled) evaluation is never
// cached. Entries carrying a limit or cursor take the paged streaming
// path instead (evalPaged).
func (s *Server) evalOne(ctx context.Context, ds *catalog.Dataset, q *core.Query, canon string, ent queryEntry, debug bool) queryResult {
	start := time.Now()
	// Tracing is opt-in per query: ?debug=1 attaches the span tree to
	// the response, and an enabled slowlog records stage timings for
	// queries that cross the threshold. Untraced queries pay nothing —
	// every span call downstream no-ops on the nil trace.
	var tr *obs.Trace
	if debug || s.slow != nil {
		tr = obs.NewTrace("query")
		tr.Root().Attr("dataset", ds.Name)
		tr.Root().Attr("index", ds.Engine.IndexKind())
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	// Price the query against the dataset's cardinality summary. The
	// quota check lives inside compute, i.e. on the miss path AFTER the
	// cache consult but BEFORE admission: an over-quota query never
	// takes (or waits for) a worker slot, while an already-cached answer
	// is still served.
	var est int64 = -1
	if ds.Card != nil {
		est = ds.Card.EstimateQuery(q)
	}
	if est > 0 {
		if ri := reqInfoFrom(ctx); ri != nil {
			ri.cost.Store(est)
		}
	}
	if ent.Limit > 0 || ent.Cursor != "" {
		return s.evalPaged(ctx, ds, q, canon, ent, est, tr, start, debug)
	}
	// One admission+evaluation path whether or not the cache is on; the
	// cache merely decides how often it runs.
	var st gtea.Stats
	compute := func() (*core.Answer, error) {
		if s.cfg.CostQuota > 0 && est > s.cfg.CostQuota {
			s.costRejected.Add(1)
			s.costRejectFor(ds.Name).Add(1)
			return nil, errCostExceeded{est: est, quota: s.cfg.CostQuota}
		}
		asp := tr.Start("admit")
		if err := s.admit(ctx); err != nil {
			asp.End()
			return nil, err
		}
		asp.End()
		defer s.done()
		a, stats, err := ds.Engine.EvalStatsCtx(ctx, q)
		st = stats
		return a, err
	}

	var ans *core.Answer
	var err error
	cached := false
	if s.cache == nil {
		ans, err = compute()
	} else {
		key := qcache.Key{
			Dataset:    ds.Name,
			Generation: ds.Generation,
			Query:      canon,
			Index:      ds.Engine.IndexKind(),
		}
		var src qcache.Source
		ans, src, err = s.cache.Do(ctx, key, compute)
		cached = src != qcache.Computed
	}
	tr.Root().Attr("cached", fmt.Sprintf("%t", cached))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Add(1)
		}
		res := queryResult{Error: err.Error()}
		if est > 0 {
			res.CostEstimate = est
		}
		s.observeQuery(ctx, ds, canon, tr, st, est, cached, time.Since(start), 0, err.Error(), debug, &res)
		return res
	}
	if cached {
		// Hit or coalesced: no evaluation ran for this caller; report
		// the result size and how long the cache path took.
		st = gtea.Stats{Results: int64(len(ans.Tuples))}
	}
	s.indexLookups.Add(st.Index)
	res := s.buildResult(q, ans, st, start, cached)
	if est > 0 {
		res.CostEstimate = est
	}
	if debug && !cached {
		res.Plan = st.Plan
	}
	s.observeQuery(ctx, ds, canon, tr, st, est, cached, time.Since(start), st.Results, "", debug, &res)
	return res
}

// observeQuery finishes a query's observability: the latency
// histogram sample, the slowlog entry when the query crossed the
// threshold, and the ?debug=1 trace attachment.
func (s *Server) observeQuery(ctx context.Context, ds *catalog.Dataset, canon string, tr *obs.Trace, st gtea.Stats, est int64, cached bool, elapsed time.Duration, rows int64, errMsg string, debug bool, res *queryResult) {
	s.queryLatency.With(ds.Name, ds.Engine.IndexKind()).Observe(elapsed.Seconds())
	tr.Finish()
	var planSummary string
	if st.Plan != nil {
		planSummary = st.Plan.String()
	}
	if s.slow != nil && elapsed >= s.cfg.SlowLogThreshold {
		e := obs.SlowEntry{
			Time:       time.Now(),
			RequestID:  requestIDFrom(ctx),
			Dataset:    ds.Name,
			Query:      canon,
			Index:      ds.Engine.IndexKind(),
			Generation: ds.Generation,
			Cached:     cached,
			Millis:     float64(elapsed.Microseconds()) / 1000,
			Rows:       rows,
			Error:      errMsg,
			Plan:       planSummary,
			Stages:     tr.Stages(),
		}
		if est > 0 {
			e.CostEstimate = est
		}
		s.slow.Add(e)
	}
	if debug {
		res.RequestID = requestIDFrom(ctx)
		res.Trace = tr.Snapshot()
	}
}

// buildResult renders an answer into the response shape, applying the
// row cap per response — cached answers stay whole and are never
// mutated, only sliced.
func (s *Server) buildResult(q *core.Query, ans *core.Answer, st gtea.Stats, start time.Time, cached bool) queryResult {
	res := queryResult{
		Rows:   ans.Tuples,
		Cached: cached,
		Stats: &resultStats{
			Input:        st.Input,
			PruneInput:   st.PruneInput,
			EnumInput:    st.EnumInput,
			IndexLookups: st.Index,
			Intermediate: st.Intermediate,
			Results:      st.Results,
			EvalMillis:   float64(time.Since(start).Microseconds()) / 1000,
		},
	}
	for _, u := range ans.Out {
		res.Columns = append(res.Columns, q.Nodes[u].Name)
	}
	if s.cfg.MaxRows > 0 && len(res.Rows) > s.cfg.MaxRows {
		res.Rows = res.Rows[:s.cfg.MaxRows:s.cfg.MaxRows]
		res.Truncated = true
	}
	if res.Rows == nil {
		res.Rows = [][]graph.NodeID{} // encode as [] rather than null
	}
	s.rows.Add(int64(len(res.Rows)))
	return res
}

// errorStatus maps a single-query error string to an HTTP status.
func errorStatus(msg string) int {
	switch {
	case msg == errOverloaded.Error():
		return http.StatusTooManyRequests
	case strings.HasPrefix(msg, costPrefix):
		return http.StatusTooManyRequests
	case msg == context.DeadlineExceeded.Error(), msg == context.Canceled.Error():
		return http.StatusGatewayTimeout
	case strings.HasPrefix(msg, cursorExpiredPrefix):
		return http.StatusGone
	default:
		return http.StatusBadRequest // parse/validation errors
	}
}

// datasetInfo decorates a catalog listing entry with the dataset's
// slice of the result-cache counters.
type datasetInfo struct {
	catalog.Info
	Cache *qcache.DatasetStats `json:"cache,omitempty"`
	// CostRejected counts queries this process rejected against the
	// dataset under the cost quota (see Config.CostQuota).
	CostRejected int64 `json:"cost_rejected,omitempty"`
}

// datasetInfos lists the catalog merged with per-dataset cache stats.
func (s *Server) datasetInfos() ([]datasetInfo, error) {
	infos, err := s.cat.List()
	if err != nil {
		return nil, err
	}
	out := make([]datasetInfo, len(infos))
	for i, info := range infos {
		out[i] = datasetInfo{Info: info}
		if s.cache != nil {
			if cs, ok := s.cache.DatasetStats(info.Name); ok {
				out[i].Cache = &cs
			}
		}
		out[i].CostRejected = s.costRejectedBy.With(info.Name).Load()
	}
	return out, nil
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	infos, err := s.datasetInfos()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"datasets": infos})
}

// poolSnapshot is one consistent read of the worker-pool counters.
// Every field is captured through its atomic exactly once, in one
// place: /stats must never interleave direct counter reads with
// response building, or a burst of traffic between two reads shows
// impossible states (e.g. more timeouts than queries). The shape is a
// struct rather than ad-hoc map entries so a missed field is a compile
// error, not a silently absent stat.
type poolSnapshot struct {
	Requests        int64 `json:"requests"`
	Queries         int64 `json:"queries"`
	Rejected        int64 `json:"rejected"`
	CostRejected    int64 `json:"cost_rejected"`
	Timeouts        int64 `json:"timeouts"`
	Failures        int64 `json:"failures"`
	Rows            int64 `json:"rows_returned"`
	InFlight        int64 `json:"in_flight"`
	Updates         int64 `json:"updates"`
	UpdateFailures  int64 `json:"update_failures"`
	Compactions     int64 `json:"compactions"`
	CompactFailures int64 `json:"compact_failures"`
}

// snapshotCounters captures all pool counters. The counters are
// per-field atomics, so each value was true at some instant during the
// call; cross-field sanity additionally needs a read order. Derived
// counters (rejected/timeouts/failures — each incremented only after
// its source counter) are read BEFORE their sources (queries, then
// requests): a derived value can then never exceed the source value
// read later, so a snapshot cannot show impossible states like more
// timeouts than queries, no matter how much traffic races the read.
func (s *Server) snapshotCounters() poolSnapshot {
	var snap poolSnapshot
	snap.Rejected = s.rejected.Load()
	snap.CostRejected = s.costRejected.Load()
	snap.Timeouts = s.timeouts.Load()
	snap.Failures = s.failures.Load()
	snap.Rows = s.rows.Load()
	snap.InFlight = s.queued.Load()
	snap.UpdateFailures = s.updateFailures.Load()
	snap.CompactFailures = s.compactFailures.Load()
	snap.Compactions = s.compactions.Load()
	snap.Updates = s.updates.Load()
	snap.Queries = s.queries.Load()
	snap.Requests = s.requests.Load()
	return snap
}

// cacheReport is the /stats cache section: the qcache counters plus
// an explicit enabled flag (the counters alone cannot distinguish
// "disabled" from "no traffic yet").
type cacheReport struct {
	Enabled bool `json:"enabled"`
	qcache.Stats
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.snapshotCounters()
	infos, _ := s.datasetInfos()
	shardedDatasets, pendingDeltas := 0, 0
	for _, info := range infos {
		if info.Shards > 0 {
			shardedDatasets++
		}
		pendingDeltas += info.PendingDeltas
	}
	cr := cacheReport{}
	if s.cache != nil {
		cr.Enabled = true
		cr.Stats = s.cache.Stats()
	}
	ss := s.subs.Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"uptime_s": time.Since(s.start).Seconds(),
		"config": map[string]interface{}{
			"workers":            s.cfg.Workers,
			"queue_depth":        s.cfg.QueueDepth,
			"default_timeout_ms": s.cfg.DefaultTimeout.Milliseconds(),
			"max_timeout_ms":     s.cfg.MaxTimeout.Milliseconds(),
			"cache_bytes":        s.cfg.CacheBytes,
			"compact_after":      s.cfg.CompactAfter,
			"cost_quota":         s.cfg.CostQuota,
		},
		"requests":         snap.Requests,
		"queries":          snap.Queries,
		"rejected":         snap.Rejected,
		"cost_rejected":    snap.CostRejected,
		"timeouts":         snap.Timeouts,
		"failures":         snap.Failures,
		"rows_returned":    snap.Rows,
		"in_flight":        snap.InFlight,
		"updates":          snap.Updates,
		"update_failures":  snap.UpdateFailures,
		"compactions":      snap.Compactions,
		"compact_failures": snap.CompactFailures,
		"pending_deltas":   pendingDeltas,
		"cache":            cr,
		"subscriptions": map[string]interface{}{
			"active":           ss.ActiveSubs,
			"clients":          ss.Clients,
			"notifications":    ss.Notifications,
			"skips":            ss.Skips,
			"restricted_evals": ss.RestrictedEvals,
			"full_evals":       ss.FullEvals,
			"dropped":          ss.Dropped,
		},
		"sharded_datasets": shardedDatasets,
		"datasets":         infos,
	})
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
