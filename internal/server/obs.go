package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"gtpq/internal/obs"
)

// Observability wiring: the server's counters live in an obs.Registry
// (scraped at GET /metrics) while /stats keeps serving the same values
// as a JSON view. Per-query traces, the slow-query ring log, the
// request-ID middleware, and the structured access log are all here so
// the serving logic in server.go stays about serving.

// requestIDHeader carries the request ID in both directions: an
// inbound value is adopted (so a caller's ID follows the request into
// logs and the slowlog), otherwise the server generates one.
const requestIDHeader = "X-GTPQ-Request-ID"

// initMetrics registers every server-owned metric on s.reg. Counters
// are registry children (the server increments them directly); values
// derived from existing state (pool depth, uptime, slowlog totals)
// are func-backed and read at scrape time.
func (s *Server) initMetrics() {
	reg := s.reg
	s.requests = reg.Counter("gtpq_requests_total", "HTTP query/update requests handled.")
	s.queries = reg.Counter("gtpq_queries_total", "Queries received (batch entries count individually).")
	s.rejected = reg.Counter("gtpq_rejected_total", "Admissions shed with 429: worker pool and queue full.")
	s.costRejected = reg.Counter("gtpq_cost_rejected_total", "Queries shed before admission by the cost quota.")
	s.costRejectedBy = reg.CounterVec("gtpq_dataset_cost_rejected_total", "Cost-quota rejections by dataset.", "dataset")
	s.timeouts = reg.Counter("gtpq_timeouts_total", "Evaluations aborted by deadline or cancellation.")
	s.failures = reg.Counter("gtpq_failures_total", "Failed queries: parse errors, unknown datasets, evaluation errors.")
	s.rows = reg.Counter("gtpq_rows_returned_total", "Result rows returned, after per-response row capping.")
	s.updates = reg.Counter("gtpq_updates_total", "Mutation batches applied.")
	s.updateFailures = reg.Counter("gtpq_update_failures_total", "Rejected or failed mutation batches.")
	s.compactions = reg.Counter("gtpq_compactions_total", "Delta-log folds this process performed after updates.")
	s.compactFailures = reg.Counter("gtpq_compact_failures_total", "Failed auto-compaction attempts (the update itself succeeded).")
	s.indexLookups = reg.Counter("gtpq_index_lookups_total", "Reachability index probes charged to fresh evaluations (3-hop list entries or closure words).")
	s.rowsStreamed = reg.Counter("gtpq_rows_streamed_total", "Result rows delivered through the streaming path: NDJSON lines and cursor-paginated pages.")
	s.streamBypass = reg.Counter("gtpq_stream_cache_bypass_total", "Streamed evaluations that deliberately bypassed the result cache (bounded-memory policy: streamed answers are never materialized for caching).")
	s.queryLatency = reg.HistogramVec("gtpq_query_seconds",
		"End-to-end query latency by dataset and reachability backend, cache hits included.",
		obs.DefLatencyBuckets, "dataset", "index")
	reg.GaugeFunc("gtpq_in_flight", "Admissions currently waiting or running.",
		func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("gtpq_workers", "Configured worker slots.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("gtpq_queue_depth", "Configured admission queue depth.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("gtpq_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	if s.slow != nil {
		reg.CounterFunc("gtpq_slowlog_entries_total", "Queries that crossed the slow-query threshold.",
			func() float64 { return float64(s.slow.Total()) })
	}
}

// reqInfo is the middleware's per-request record. The handler chain
// fills dataset/cost as it learns them; the middleware reads them
// after ServeHTTP returns (the handler's internal goroutines are
// joined by then, but batch eval goroutines race each other on cost,
// hence the atomic).
type reqInfo struct {
	id      string
	dataset string
	cost    atomic.Int64
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// requestIDFrom returns the current request's ID ("" outside a
// request, e.g. direct evalOne calls in tests).
func requestIDFrom(ctx context.Context) string {
	if ri := reqInfoFrom(ctx); ri != nil {
		return ri.id
	}
	return ""
}

// newRequestID returns a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000" // rand.Read failing means bigger problems
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers (SSE, NDJSON) can flush through the middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// accessLine is one structured access-log record (JSON, one per line).
type accessLine struct {
	Time      string  `json:"time"`
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Millis    float64 `json:"ms"`
	Dataset   string  `json:"dataset,omitempty"`
	// CostEstimate is the admission-time estimate of the request's last
	// priced query (batches report one representative value).
	CostEstimate int64 `json:"cost_estimate,omitempty"`
}

// instrument wraps the API with the request-ID and access-log
// middleware: every response carries X-GTPQ-Request-ID (inbound value
// adopted, else generated), and with an access log configured every
// AccessLogSample-th request writes one JSON line.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{id: r.Header.Get(requestIDHeader)}
		if ri.id == "" {
			ri.id = newRequestID()
		}
		w.Header().Set(requestIDHeader, ri.id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(withReqInfo(r.Context(), ri)))

		if s.cfg.AccessLog == nil {
			return
		}
		if n := int64(s.cfg.AccessLogSample); n > 1 && (s.logSeq.Add(1)-1)%n != 0 {
			return
		}
		line, err := json.Marshal(accessLine{
			Time:         start.UTC().Format(time.RFC3339Nano),
			RequestID:    ri.id,
			Method:       r.Method,
			Path:         r.URL.Path,
			Status:       sw.status,
			Millis:       float64(time.Since(start).Microseconds()) / 1000,
			Dataset:      ri.dataset,
			CostEstimate: ri.cost.Load(),
		})
		if err != nil {
			return
		}
		s.logMu.Lock()
		s.cfg.AccessLog.Write(append(line, '\n'))
		s.logMu.Unlock()
	})
}

// handleMetrics serves the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Handler().ServeHTTP(w, r)
}

// handleSlowlog serves the slow-query ring, newest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	if s.slow == nil {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"enabled": false,
			"entries": []obs.SlowEntry{},
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"enabled":      true,
		"threshold_ms": s.cfg.SlowLogThreshold.Milliseconds(),
		"size":         s.cfg.SlowLogSize,
		"total":        s.slow.Total(),
		"dropped":      s.slow.Dropped(),
		"entries":      s.slow.Entries(),
	})
}
