package server

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"gtpq/internal/catalog"
)

// TestGracefulShutdownDrains is the server e2e for the gtpq-serve
// shutdown path: with a slow evaluation in flight, Shutdown + Drain
// must let it finish (no dropped answer), Drain must not return while
// work is admitted, and the catalog's delta log must flush so a
// follow-up process replays every acknowledged update.
func TestGracefulShutdownDrains(t *testing.T) {
	// Real listener + http.Server, mirroring cmd/gtpq-serve (httptest's
	// Close is not the Shutdown path under test).
	tsURL, s, hs := newShutdownStack(t)

	// Acknowledge one update before shutting down.
	code, _ := postJSON(t, tsURL+"/update", map[string]interface{}{
		"dataset": "small",
		"edges":   []map[string]interface{}{{"from": 0, "to": 4}},
	})
	if code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}

	// A slow in-flight query: the chain dataset's pair enumeration
	// takes long enough to still be running when shutdown starts.
	type result struct {
		rows int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		code, out := postQuery(t, tsURL, map[string]interface{}{
			"dataset":    "chain",
			"query":      "node x label=a output\nnode y label=a parent=x edge=ad output",
			"timeout_ms": 20000,
		})
		if code != http.StatusOK {
			done <- result{err: &net.AddrError{Err: "query failed", Addr: out["error"].(string)}}
			return
		}
		done <- result{rows: len(out["rows"].([]interface{}))}
	}()

	// Wait until the evaluation is admitted.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// The gtpq-serve shutdown sequence: stop accepting, drain, flush.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.queued.Load(); got != 0 {
		t.Fatalf("drain returned with %d admissions in flight", got)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("in-flight query dropped: %v", r.err)
		}
		if r.rows == 0 {
			t.Fatal("in-flight query returned no rows")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query did not complete after drain")
	}
	if err := s.cat.Close(); err != nil {
		t.Fatalf("flushing delta logs: %v", err)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(tsURL + "/healthz"); err == nil {
		t.Fatal("server accepted a connection after Shutdown")
	}

	// The acknowledged update replays in the next process.
	cat2 := reopenCatalog(t, s)
	ds, err := cat2.Acquire("small")
	if err != nil {
		t.Fatalf("replaying after shutdown: %v", err)
	}
	defer ds.Release()
	if ds.DeltaBatches != 1 {
		t.Fatalf("replayed %d batches, want 1", ds.DeltaBatches)
	}
	if !ds.Graph.HasEdge(0, 4) {
		t.Fatal("acknowledged update lost across shutdown")
	}
}

// TestDrainTimesOut pins Drain's failure mode: with work still in
// flight past the deadline it reports the stragglers instead of
// hanging.
func TestDrainTimesOut(t *testing.T) {
	_, s := newTestServer(t, Config{})
	s.queued.Add(1) // simulate a stuck admission
	defer s.queued.Add(-1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with stuck admission returned nil")
	}
}

// newShutdownStack builds the catalog+server over a real net.Listener.
func newShutdownStack(t *testing.T) (string, *Server, *http.Server) {
	t.Helper()
	// MaxRows keeps the slow part in the evaluation (what drain waits
	// on) rather than in shipping a 1M-row JSON body to the client.
	_, s := newTestServer(t, Config{MaxRows: 1000})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String(), s, hs
}

// reopenCatalog opens a second catalog over the server's directory,
// simulating the next process.
func reopenCatalog(t *testing.T, s *Server) *catalog.Catalog {
	t.Helper()
	cat2, err := catalog.Open(s.cat.Dir(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat2.Close() })
	return cat2
}
