package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/qlang"
	"gtpq/internal/sub"
)

// Standing queries: POST /subscribe upgrades the response into a
// Server-Sent Events stream. The body names a dataset and a query; the
// stream opens with a snapshot of the current result and then pushes a
// delta event (added/removed tuples) after every applied update batch
// that changes it. Event ids are catalog generations — a reconnecting
// client sends the standard Last-Event-ID header and, when the
// subscription's replay ring still covers that generation, receives
// only the deltas it missed instead of a snapshot reset. Slow
// consumers are never allowed to stall the matcher: past the
// per-client buffer their events are dropped and summarized by a `gap`
// event (with the drop count) followed by a fresh snapshot.

// subPingInterval paces SSE keep-alive comments so idle streams are
// not reaped by intermediaries.
const subPingInterval = 15 * time.Second

// subscribeRequest is the POST /subscribe body.
type subscribeRequest struct {
	Dataset string `json:"dataset"`
	Query   string `json:"query"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req subscribeRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err))
		return
	}
	if req.Dataset == "" {
		httpError(w, http.StatusBadRequest, "missing \"dataset\"")
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		ri.dataset = req.Dataset
	}
	q, err := qlang.Parse(req.Query)
	if err != nil {
		s.failures.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Last-Event-ID is the SSE resume header; 0 (or garbage) means a
	// fresh attach and yields an initial snapshot.
	lastID, _ := strconv.ParseUint(r.Header.Get("Last-Event-ID"), 10, 64)

	c, err := s.subs.Subscribe(req.Dataset, q, lastID)
	if err != nil {
		switch {
		case errors.Is(err, sub.ErrTooManySubs):
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, sub.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, catalog.ErrUnknownDataset):
			s.failures.Add(1)
			httpError(w, http.StatusNotFound, err.Error())
		default:
			s.failures.Add(1)
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	defer c.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	ping := time.NewTicker(subPingInterval)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-c.Events():
			if !ok {
				return // subscription failed or server shutting down
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-ping.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// writeSSE frames one event: the type and generation ride the SSE
// fields, the payload is one JSON object on the data line.
func writeSSE(w http.ResponseWriter, ev sub.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.ID, data)
	return err
}
