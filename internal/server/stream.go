// Streaming result delivery: cursor pagination on the JSON path and
// chunked NDJSON responses, both fed by the engines' pull-based
// gtea.Cursor instead of materialized answers.
//
// Policy: a paged or NDJSON request consults the result cache for hits
// (a cached answer pages for free) but a miss deliberately bypasses it
// — the whole point of streaming is never holding the full answer, so
// nothing is materialized for Put. The cache stays the fast path for
// repeated unpaged queries; streaming is the bounded-memory path for
// answers too large to want resident.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/core"
	"gtpq/internal/graph"
	"gtpq/internal/gtea"
	"gtpq/internal/obs"
	"gtpq/internal/qcache"
	"gtpq/internal/qlang"
)

// cursorExpiredPrefix opens every stale-cursor error; errorStatus maps
// it to 410 Gone (the dataset mutated under the token, and result
// positions are only stable within one generation).
const cursorExpiredPrefix = "cursor expired: "

// pageToken is the decoded form of the opaque continuation cursor. It
// pins everything that must not drift between pages: the dataset, its
// hot-reload generation, the canonical query (hashed), and the index
// kind — plus the resume offset into the canonical row order.
type pageToken struct {
	V          int    `json:"v"`
	Dataset    string `json:"d"`
	Generation uint64 `json:"g"`
	QueryHash  string `json:"q"`
	Index      string `json:"i"`
	Offset     int64  `json:"o"`
}

// queryHash fingerprints a canonical query for cursor pinning.
func queryHash(canon string) string {
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8])
}

// encodePageToken mints the continuation cursor resuming at offset.
func encodePageToken(ds *catalog.Dataset, canon string, offset int64) string {
	raw, _ := json.Marshal(pageToken{
		V:          1,
		Dataset:    ds.Name,
		Generation: ds.Generation,
		QueryHash:  queryHash(canon),
		Index:      ds.Engine.IndexKind(),
		Offset:     offset,
	})
	return base64.RawURLEncoding.EncodeToString(raw)
}

// decodePageToken validates tok against the acquired dataset and the
// request's query, returning the resume offset. Mismatched bindings are
// client errors (400); a generation mismatch means the dataset mutated
// since the token was minted and maps to 410 Gone.
func decodePageToken(tok string, ds *catalog.Dataset, canon string) (int64, error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, fmt.Errorf("invalid cursor: %v", err)
	}
	var pt pageToken
	if err := json.Unmarshal(raw, &pt); err != nil {
		return 0, fmt.Errorf("invalid cursor: %v", err)
	}
	switch {
	case pt.V != 1:
		return 0, fmt.Errorf("invalid cursor: unsupported version %d", pt.V)
	case pt.Dataset != ds.Name:
		return 0, fmt.Errorf("invalid cursor: issued for dataset %q", pt.Dataset)
	case pt.QueryHash != queryHash(canon):
		return 0, errors.New("invalid cursor: issued for a different query")
	case pt.Offset < 0:
		return 0, errors.New("invalid cursor: negative offset")
	// Generation before index kind: a mutation can swap the engine for
	// an overlay (different kind), and that must read as 410-stale, not
	// as a malformed token.
	case pt.Generation != ds.Generation:
		return 0, errors.New(cursorExpiredPrefix + "dataset generation changed")
	case pt.Index != ds.Engine.IndexKind():
		return 0, fmt.Errorf("invalid cursor: issued for index %q", pt.Index)
	}
	return pt.Offset, nil
}

// pageLimit resolves an entry's page size: an explicit limit is capped
// by MaxRows; no limit means a MaxRows-sized page (or, with both
// unset, the whole remaining stream).
func (s *Server) pageLimit(limit int) int {
	if s.cfg.MaxRows > 0 && (limit <= 0 || limit > s.cfg.MaxRows) {
		return s.cfg.MaxRows
	}
	if limit < 0 {
		return 0
	}
	return limit
}

// openCursor yields the result stream for one query: a zero-cost
// replay cursor over a cached answer when the cache holds one, else a
// fresh engine cursor behind cost-quota and admission control. The
// returned release func must be called exactly once when the drain
// ends — it closes the cursor and frees the worker slot, which streaming
// holds for the whole drain (a slow client occupies a worker; admission
// control is the backpressure).
func (s *Server) openCursor(ctx context.Context, ds *catalog.Dataset, q *core.Query, canon string, est int64, tr *obs.Trace) (cur gtea.Cursor, st gtea.Stats, cached bool, release func(), err error) {
	if s.cache != nil {
		key := qcache.Key{
			Dataset:    ds.Name,
			Generation: ds.Generation,
			Query:      canon,
			Index:      ds.Engine.IndexKind(),
		}
		if ans, ok := s.cache.Get(key); ok {
			return gtea.NewAnswerCursor(ans), gtea.Stats{Results: int64(len(ans.Tuples))}, true, func() {}, nil
		}
		s.streamBypass.Add(1)
	}
	if s.cfg.CostQuota > 0 && est > s.cfg.CostQuota {
		s.costRejected.Add(1)
		s.costRejectFor(ds.Name).Add(1)
		return nil, st, false, nil, errCostExceeded{est: est, quota: s.cfg.CostQuota}
	}
	asp := tr.Start("admit")
	if aerr := s.admit(ctx); aerr != nil {
		asp.End()
		return nil, st, false, nil, aerr
	}
	asp.End()
	cur, st, err = ds.Engine.EvalCursor(ctx, q)
	if err != nil {
		s.done()
		return nil, st, false, nil, err
	}
	return cur, st, false, func() { cur.Close(); s.done() }, nil
}

// pageRows drains one page window from cur: skip offset rows, collect
// up to limit (0 = all remaining), then peek one row to learn whether a
// continuation exists. Rows from a lazy cursor are copied out of its
// reused buffer; a buffered cursor's tuples are stable and referenced
// directly.
func pageRows(cur gtea.Cursor, offset int64, limit int) (rows [][]graph.NodeID, more bool, err error) {
	for skipped := int64(0); skipped < offset; skipped++ {
		if _, ok := cur.Next(); !ok {
			return [][]graph.NodeID{}, false, cur.Err()
		}
	}
	rows = [][]graph.NodeID{} // encode as [] rather than null
	stable := cur.Buffered()
	for limit <= 0 || len(rows) < limit {
		row, ok := cur.Next()
		if !ok {
			return rows, false, cur.Err()
		}
		if !stable {
			row = append([]graph.NodeID(nil), row...)
		}
		rows = append(rows, row)
	}
	if _, ok := cur.Next(); ok {
		return rows, true, nil
	}
	return rows, false, cur.Err()
}

// evalPaged answers one query's page window through a cursor: O(page)
// response memory regardless of result size, with a generation-pinned
// continuation token when rows remain. Fresh evaluations bypass the
// result cache by design (see the package policy note above).
func (s *Server) evalPaged(ctx context.Context, ds *catalog.Dataset, q *core.Query, canon string, ent queryEntry, est int64, tr *obs.Trace, start time.Time, debug bool) queryResult {
	fail := func(err error) queryResult {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Add(1)
		}
		res := queryResult{Error: err.Error()}
		if est > 0 {
			res.CostEstimate = est
		}
		s.observeQuery(ctx, ds, canon, tr, gtea.Stats{}, est, false, time.Since(start), 0, err.Error(), debug, &res)
		return res
	}
	var offset int64
	if ent.Cursor != "" {
		off, err := decodePageToken(ent.Cursor, ds, canon)
		if err != nil {
			s.failures.Add(1)
			return fail(err)
		}
		offset = off
	}
	cur, st, cached, release, err := s.openCursor(ctx, ds, q, canon, est, tr)
	if err != nil {
		return fail(err)
	}
	defer release()

	sp := tr.Start("stream")
	rows, more, err := pageRows(cur, offset, s.pageLimit(ent.Limit))
	sp.AttrInt("rows", int64(len(rows)))
	sp.End()
	if err != nil {
		return fail(err)
	}

	res := queryResult{
		Rows:   rows,
		Cached: cached,
		Stats: &resultStats{
			Input:        st.Input,
			PruneInput:   st.PruneInput,
			EnumInput:    st.EnumInput,
			IndexLookups: st.Index,
			Intermediate: st.Intermediate,
			Results:      int64(len(rows)),
			EvalMillis:   float64(time.Since(start).Microseconds()) / 1000,
		},
	}
	for _, u := range cur.Out() {
		res.Columns = append(res.Columns, q.Nodes[u].Name)
	}
	if more {
		res.NextCursor = encodePageToken(ds, canon, offset+int64(len(rows)))
	}
	if est > 0 {
		res.CostEstimate = est
	}
	if debug && !cached {
		res.Plan = st.Plan
	}
	s.indexLookups.Add(st.Index)
	s.rows.Add(int64(len(rows)))
	s.rowsStreamed.Add(int64(len(rows)))
	s.observeQuery(ctx, ds, canon, tr, st, est, cached, time.Since(start), int64(len(rows)), "", debug, &res)
	return res
}

// wantsNDJSON reports whether the request negotiated a streaming
// NDJSON response.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// ndjsonHead is the first NDJSON line: everything the client needs
// before the rows arrive.
type ndjsonHead struct {
	Dataset string   `json:"dataset"`
	Columns []string `json:"columns"`
	Cached  bool     `json:"cached"`
}

// ndjsonRow is one result line.
type ndjsonRow struct {
	Row []graph.NodeID `json:"row"`
}

// ndjsonTrailer is the last NDJSON line: the row count, the
// continuation cursor when the window capped the stream, the evaluation
// stats, and any mid-stream error (pre-stream errors use a plain JSON
// error response instead — the status line is still writable then).
type ndjsonTrailer struct {
	Done       bool         `json:"done"`
	Rows       int64        `json:"rows"`
	NextCursor string       `json:"next_cursor,omitempty"`
	Stats      *resultStats `json:"stats,omitempty"`
	Error      string       `json:"error,omitempty"`
}

// streamNDJSON answers one query as chunked NDJSON: a head record, one
// object per result row, and a trailer with stats — flushed every
// Config.StreamBuffer rows so time-to-first-row is independent of
// result size. Honors the same limit/cursor window as the JSON path.
func (s *Server) streamNDJSON(w http.ResponseWriter, r *http.Request, ds *catalog.Dataset, req queryRequest, ent queryEntry, debug bool) {
	start := time.Now()
	s.queries.Add(1)
	q, err := qlang.Parse(ent.Query)
	if err != nil {
		s.failures.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	canon := qlang.Format(q)

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	var tr *obs.Trace
	if debug || s.slow != nil {
		tr = obs.NewTrace("query")
		tr.Root().Attr("dataset", ds.Name)
		tr.Root().Attr("index", ds.Engine.IndexKind())
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	var est int64 = -1
	if ds.Card != nil {
		est = ds.Card.EstimateQuery(q)
	}
	if est > 0 {
		if ri := reqInfoFrom(ctx); ri != nil {
			ri.cost.Store(est)
		}
	}

	// Everything that can fail before the first row fails as a plain
	// JSON error with a real status code.
	preFail := func(err error) {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Add(1)
		}
		res := queryResult{Error: err.Error()}
		s.observeQuery(ctx, ds, canon, tr, gtea.Stats{}, est, false, time.Since(start), 0, err.Error(), debug, &res)
		httpError(w, errorStatus(err.Error()), err.Error())
	}
	var offset int64
	if ent.Cursor != "" {
		off, derr := decodePageToken(ent.Cursor, ds, canon)
		if derr != nil {
			s.failures.Add(1)
			preFail(derr)
			return
		}
		offset = off
	}
	cur, st, cached, release, err := s.openCursor(ctx, ds, q, canon, est, tr)
	if err != nil {
		preFail(err)
		return
	}
	defer release()

	head := ndjsonHead{Dataset: ds.Name, Cached: cached}
	for _, u := range cur.Out() {
		head.Columns = append(head.Columns, q.Nodes[u].Name)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if est > 0 {
		w.Header().Set("X-GTPQ-Cost", fmt.Sprintf("%d", est))
	}
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	if err := enc.Encode(head); err != nil {
		s.observeQuery(ctx, ds, canon, tr, st, est, cached, time.Since(start), 0, err.Error(), debug, &queryResult{})
		return
	}
	rc.Flush() // first byte out before any row is computed

	limit := s.pageLimit(ent.Limit)
	sp := tr.Start("stream")
	var n int64
	var more bool
	var streamErr error
	for skipped := int64(0); skipped < offset && streamErr == nil; skipped++ {
		if _, ok := cur.Next(); !ok {
			streamErr = cur.Err()
			break
		}
	}
	if streamErr == nil {
		for limit <= 0 || n < int64(limit) {
			row, ok := cur.Next()
			if !ok {
				streamErr = cur.Err()
				break
			}
			if err := enc.Encode(ndjsonRow{Row: row}); err != nil {
				streamErr = fmt.Errorf("write: %w", err) // client went away
				break
			}
			n++
			if n%int64(s.cfg.StreamBuffer) == 0 {
				rc.Flush()
			}
		}
		if streamErr == nil && limit > 0 && n == int64(limit) {
			if _, ok := cur.Next(); ok {
				more = true
			} else {
				streamErr = cur.Err()
			}
		}
	}
	sp.AttrInt("rows", n)
	sp.End()

	trailer := ndjsonTrailer{
		Done: true,
		Rows: n,
		Stats: &resultStats{
			Input:        st.Input,
			PruneInput:   st.PruneInput,
			EnumInput:    st.EnumInput,
			IndexLookups: st.Index,
			Intermediate: st.Intermediate,
			Results:      n,
			EvalMillis:   float64(time.Since(start).Microseconds()) / 1000,
		},
	}
	if more {
		trailer.NextCursor = encodePageToken(ds, canon, offset+n)
	}
	errMsg := ""
	if streamErr != nil {
		if errors.Is(streamErr, context.DeadlineExceeded) || errors.Is(streamErr, context.Canceled) {
			s.timeouts.Add(1)
		}
		errMsg = streamErr.Error()
		trailer.Error = errMsg
	}
	enc.Encode(trailer)
	rc.Flush()

	s.indexLookups.Add(st.Index)
	s.rows.Add(n)
	s.rowsStreamed.Add(n)
	s.observeQuery(ctx, ds, canon, tr, st, est, cached, time.Since(start), n, errMsg, debug, &queryResult{})
}
