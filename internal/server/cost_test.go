package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestServeCostAdmission covers the estimate-driven admission path: a
// query whose cardinality estimate exceeds -cost-quota is rejected
// with 429 and the cost header before taking a worker slot, cheap
// queries still serve, the rejection counters surface in /stats and
// /datasets, and ?debug=1 carries the plan summary on evaluated
// responses.
func TestServeCostAdmission(t *testing.T) {
	ts, _ := newTestServer(t, Config{CostQuota: 100, CacheBytes: 1 << 20})

	post := func(path string, body interface{}) (*http.Response, map[string]interface{}) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return resp, out
	}

	// Cheap query on "small": estimate 2 (label a) + 2 (label b) = 4,
	// under the quota — served, with the estimate in header and body.
	resp, out := post("/query", map[string]interface{}{"dataset": "small", "query": abQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cheap query status %d: %v", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-GTPQ-Cost"); got != "4" {
		t.Fatalf("cheap query cost header = %q, want 4", got)
	}
	if est := out["cost_estimate"].(float64); est != 4 {
		t.Fatalf("cost_estimate = %v, want 4", est)
	}

	// Expensive query on "chain": 1500 label-a nodes at both pattern
	// nodes, estimate 3000 > 100 — rejected before evaluation.
	hot := "node x label=a output\nnode y label=a parent=x edge=ad output"
	for i := 0; i < 2; i++ {
		resp, out = post("/query", map[string]interface{}{"dataset": "chain", "query": hot})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("hot query status %d: %v", resp.StatusCode, out)
		}
		if got := resp.Header.Get("X-GTPQ-Cost"); got != "3000" {
			t.Fatalf("hot query cost header = %q, want 3000", got)
		}
	}

	// The rejections are counted globally and per dataset.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if got := stats["cost_rejected"].(float64); got != 2 {
		t.Fatalf("stats cost_rejected = %v, want 2", got)
	}
	if got := stats["config"].(map[string]interface{})["cost_quota"].(float64); got != 100 {
		t.Fatalf("stats config cost_quota = %v, want 100", got)
	}
	dresp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Datasets []struct {
			Name         string `json:"name"`
			CostRejected int64  `json:"cost_rejected"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	for _, d := range dl.Datasets {
		want := int64(0)
		if d.Name == "chain" {
			want = 2
		}
		if d.CostRejected != want {
			t.Fatalf("dataset %s cost_rejected = %d, want %d", d.Name, d.CostRejected, want)
		}
	}

	// ?debug=1: an evaluated response carries the plan summary, a
	// cache-served one does not (the cache stores answers, not plans).
	resp, out = post("/query?debug=1", map[string]interface{}{"dataset": "small", "query": "node x label=c output"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug query status %d: %v", resp.StatusCode, out)
	}
	plan, ok := out["plan"].(map[string]interface{})
	if !ok {
		t.Fatalf("debug response has no plan: %v", out)
	}
	if _, ok := plan["order"].([]interface{}); !ok {
		t.Fatalf("plan has no order: %v", plan)
	}
	resp, out = post("/query?debug=1", map[string]interface{}{"dataset": "small", "query": "node x label=c output"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached debug query status %d: %v", resp.StatusCode, out)
	}
	if out["cached"] != true {
		t.Fatalf("second debug query not cached: %v", out)
	}
	if _, ok := out["plan"]; ok {
		t.Fatalf("cached response carries a plan: %v", out)
	}
}
