package server

import (
	"net/http"
)

// Liveness vs readiness: GET /healthz answers 200 whenever the process
// can serve HTTP at all — orchestrators use it to decide whether to
// restart the process. GET /readyz answers 200 only when the process
// should receive traffic: no dataset load (build, snapshot revival,
// delta replay) is in flight, and — on replicas — the replication
// tailer reports every followed dataset in-sync within its lag bound
// (Config.ReadyCheck). The query router probes /readyz and routes
// around processes that fail it, so a replica falling behind degrades
// to invisible instead of serving stale answers unannounced.

// readyzResponse is the GET /readyz body.
type readyzResponse struct {
	Ready bool `json:"ready"`
	// Loading names datasets whose load is in flight.
	Loading []string `json:"loading,omitempty"`
	// NotSynced names replicated datasets beyond the lag bound (or not
	// yet bootstrapped), as reported by Config.ReadyCheck.
	NotSynced []string `json:"not_synced,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := readyzResponse{Loading: s.cat.Loading()}
	resp.Ready = len(resp.Loading) == 0
	if s.cfg.ReadyCheck != nil {
		ok, notSynced := s.cfg.ReadyCheck()
		resp.Ready = resp.Ready && ok
		resp.NotSynced = notSynced
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
