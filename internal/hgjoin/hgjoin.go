// Package hgjoin implements HGJoin (Wang et al., PVLDB'08), the
// hash-based structural-join baseline: the tree pattern is decomposed
// into its edges, each edge's match pairs are produced with a
// reachability index, and the pair sets are joined following a plan
// (an order over the query edges keeping the joined subgraph
// connected).
//
// Two variants match the paper's §5 setup:
//
//   - HGJoin+ (Plus): intermediate results are tuples; the reported time
//     is the best over a small set of plans (a selectivity-greedy plan
//     plus random connected orders), standing in for the paper's
//     exhaustive plan enumeration.
//   - HGJoin* (Star): intermediate results are represented as a graph —
//     per-edge adjacency over candidate sets with recursive deletion of
//     unsupported nodes — and tuples are only enumerated at the end,
//     the paper's own ablation of the graph representation idea.
package hgjoin

import (
	"math/rand"
	"sort"

	"gtpq/internal/core"
	"gtpq/internal/graph"
	"gtpq/internal/reach"
)

// Stats mirrors the paper's I/O-cost metrics.
type Stats struct {
	// Input counts data nodes scanned from candidate lists.
	Input int64
	// Index counts reachability-index lookups.
	Index int64
	// Intermediate counts tuple elements (Plus) or match-graph
	// nodes+edges (Star).
	Intermediate int64
}

// Engine evaluates conjunctive TPQs by structural joins. Any
// reach.ContourIndex backend works; the per-edge joins only need
// single-source successor contours.
type Engine struct {
	G *graph.Graph
	H reach.ContourIndex
	// Plans is the number of random plans tried in addition to the
	// greedy one (Plus only); 0 means greedy only.
	Plans int
	rng   *rand.Rand
	stat  Stats
}

// New builds an HGJoin engine over g, constructing its reachability
// index.
func New(g *graph.Graph) *Engine {
	g.Freeze()
	return &Engine{G: g, H: reach.NewThreeHop(g), Plans: 2, rng: rand.New(rand.NewSource(1))}
}

// NewWithIndex shares an existing index.
func NewWithIndex(g *graph.Graph, h reach.ContourIndex) *Engine {
	return &Engine{G: g, H: h, Plans: 2, rng: rand.New(rand.NewSource(1))}
}

// Stats returns the counters of the most recent Eval.
func (e *Engine) Stats() Stats { return e.stat }

// qedge is a query edge (parent, child).
type qedge struct{ p, c int }

// EvalPlus evaluates q with tuple-represented intermediates, returning
// the best plan's answer (all plans produce the same answer; the best
// is the one generating the fewest intermediate tuple elements, the
// paper's stand-in for fastest).
func (e *Engine) EvalPlus(q *core.Query) *core.Answer {
	e.stat = Stats{}
	mat := e.candidates(q)
	edges := queryEdges(q)
	if len(edges) == 0 {
		// Single-node query.
		ans := core.NewAnswer(q.Outputs())
		for _, v := range mat[q.Root] {
			ans.Add([]graph.NodeID{v})
		}
		ans.Canonicalize()
		return ans
	}
	pairs := e.edgePairs(q, mat, edges)

	plans := [][]int{greedyPlan(q, mat, edges)}
	for i := 0; i < e.Plans; i++ {
		plans = append(plans, randomPlan(e.rng, q, edges))
	}
	var best *core.Answer
	var bestCost int64 = 1 << 62
	var bestStats Stats
	base := e.stat
	for _, plan := range plans {
		e.stat = base
		ans, cost := e.runPlan(q, edges, pairs, plan)
		if cost < bestCost {
			bestCost = cost
			best = ans
			bestStats = e.stat
		}
	}
	e.stat = bestStats
	return best
}

// EvalStar evaluates q with graph-represented intermediates.
func (e *Engine) EvalStar(q *core.Query) *core.Answer {
	e.stat = Stats{}
	mat := e.candidates(q)
	edges := queryEdges(q)
	ans := core.NewAnswer(q.Outputs())
	if len(edges) == 0 {
		for _, v := range mat[q.Root] {
			ans.Add([]graph.NodeID{v})
		}
		ans.Canonicalize()
		return ans
	}
	pairs := e.edgePairs(q, mat, edges)

	// Graph representation: adjacency per edge, then recursive deletion
	// of nodes lacking support on any incident edge.
	adj := make([]map[graph.NodeID][]graph.NodeID, len(edges))  // parent -> children
	radj := make([]map[graph.NodeID][]graph.NodeID, len(edges)) // child -> parents
	for i, ps := range pairs {
		adj[i] = map[graph.NodeID][]graph.NodeID{}
		radj[i] = map[graph.NodeID][]graph.NodeID{}
		for _, pr := range ps {
			adj[i][pr[0]] = append(adj[i][pr[0]], pr[1])
			radj[i][pr[1]] = append(radj[i][pr[1]], pr[0])
			e.stat.Intermediate += 2
		}
	}
	alive := make([]map[graph.NodeID]bool, len(q.Nodes))
	for u := range q.Nodes {
		alive[u] = map[graph.NodeID]bool{}
		for _, v := range mat[u] {
			alive[u][v] = true
		}
	}
	// Recursive deletion to a fixpoint: a candidate needs a surviving
	// partner on every incident query edge.
	for changed := true; changed; {
		changed = false
		for i, ed := range edges {
			for v := range alive[ed.p] {
				ok := false
				for _, w := range adj[i][v] {
					if alive[ed.c][w] {
						ok = true
						break
					}
				}
				if !ok {
					delete(alive[ed.p], v)
					changed = true
				}
			}
			for w := range alive[ed.c] {
				ok := false
				for _, v := range radj[i][w] {
					if alive[ed.p][v] {
						ok = true
						break
					}
				}
				if !ok {
					delete(alive[ed.c], w)
					changed = true
				}
			}
		}
	}
	// Enumerate from the pruned graph representation.
	outPos := make(map[int]int, len(ans.Out))
	for i, o := range ans.Out {
		outPos[o] = i
	}
	order := q.PreOrder()
	childIdx := make(map[qedge]int, len(edges))
	for i, ed := range edges {
		childIdx[ed] = i
	}
	tuple := make([]graph.NodeID, len(ans.Out))
	images := make(map[int]graph.NodeID, len(q.Nodes))
	var emit func(i int)
	emit = func(i int) {
		if i == len(order) {
			for o, pos := range outPos {
				tuple[pos] = images[o]
			}
			ans.Add(append([]graph.NodeID(nil), tuple...))
			return
		}
		u := order[i]
		if u == q.Root {
			for v := range alive[u] {
				images[u] = v
				emit(i + 1)
			}
			return
		}
		ei := childIdx[qedge{q.Nodes[u].Parent, u}]
		for _, w := range adj[ei][images[q.Nodes[u].Parent]] {
			if !alive[u][w] {
				continue
			}
			images[u] = w
			emit(i + 1)
		}
	}
	emit(0)
	ans.Canonicalize()
	return ans
}

func (e *Engine) candidates(q *core.Query) [][]graph.NodeID {
	mat := make([][]graph.NodeID, len(q.Nodes))
	for u := range q.Nodes {
		mat[u] = append([]graph.NodeID(nil), core.Candidates(e.G, q.Nodes[u].Attr)...)
		e.stat.Input += int64(len(mat[u]))
	}
	return mat
}

func queryEdges(q *core.Query) []qedge {
	var out []qedge
	for _, u := range q.PreOrder() {
		for _, c := range q.Nodes[u].Children {
			out = append(out, qedge{u, c})
		}
	}
	return out
}

// edgePairs computes the match pairs of every query edge with the
// reachability index (the per-edge structural join).
func (e *Engine) edgePairs(q *core.Query, mat [][]graph.NodeID, edges []qedge) [][][2]graph.NodeID {
	// Per-call sink: sharing an index between engines must not leak
	// lookup counts across them.
	var rst reach.Stats
	pairs := make([][][2]graph.NodeID, len(edges))
	for i, ed := range edges {
		if q.Nodes[ed.c].PEdge == core.PC {
			inC := make(map[graph.NodeID]bool, len(mat[ed.c]))
			for _, w := range mat[ed.c] {
				inC[w] = true
			}
			for _, v := range mat[ed.p] {
				for _, w := range e.G.Out(v) {
					if inC[w] {
						pairs[i] = append(pairs[i], [2]graph.NodeID{v, w})
					}
				}
			}
			continue
		}
		for _, v := range mat[ed.p] {
			cs := e.H.SuccContour([]graph.NodeID{v}, &rst)
			for _, w := range mat[ed.c] {
				if cs.ReachesNode(w, &rst) {
					pairs[i] = append(pairs[i], [2]graph.NodeID{v, w})
				}
			}
		}
	}
	e.stat.Index += rst.Lookups
	return pairs
}

// runPlan joins the edge pair lists in the plan's order, tuples as
// intermediates; it returns the answer and the intermediate-element
// count as the plan's cost.
func (e *Engine) runPlan(q *core.Query, edges []qedge, pairs [][][2]graph.NodeID, plan []int) (*core.Answer, int64) {
	n := len(q.Nodes)
	var cost int64
	bound := make([]bool, n)

	first := plan[0]
	var acc [][]graph.NodeID
	for _, pr := range pairs[first] {
		t := make([]graph.NodeID, n)
		for i := range t {
			t[i] = -1
		}
		t[edges[first].p], t[edges[first].c] = pr[0], pr[1]
		acc = append(acc, t)
		cost += 2
	}
	bound[edges[first].p], bound[edges[first].c] = true, true

	for _, ei := range plan[1:] {
		ed := edges[ei]
		// One endpoint is bound (plans keep the subgraph connected).
		joinOnParent := bound[ed.p]
		idx := make(map[graph.NodeID][][2]graph.NodeID)
		for _, pr := range pairs[ei] {
			k := pr[0]
			if !joinOnParent {
				k = pr[1]
			}
			idx[k] = append(idx[k], pr)
		}
		var next [][]graph.NodeID
		for _, t := range acc {
			var key graph.NodeID
			if joinOnParent {
				key = t[ed.p]
			} else {
				key = t[ed.c]
			}
			for _, pr := range idx[key] {
				// If both endpoints bound, pair must agree.
				if joinOnParent && bound[ed.c] && t[ed.c] != pr[1] {
					continue
				}
				nt := append([]graph.NodeID(nil), t...)
				nt[ed.p], nt[ed.c] = pr[0], pr[1]
				next = append(next, nt)
				cost += int64(n)
			}
		}
		acc = next
		bound[ed.p], bound[ed.c] = true, true
		if len(acc) == 0 {
			break
		}
	}
	e.stat.Intermediate += cost

	ans := core.NewAnswer(q.Outputs())
	for _, t := range acc {
		row := make([]graph.NodeID, len(ans.Out))
		for i, o := range ans.Out {
			row[i] = t[o]
		}
		ans.Add(row)
	}
	ans.Canonicalize()
	return ans, cost
}

// greedyPlan orders edges by ascending estimated selectivity
// (|mat(p)| * |mat(c)|), keeping the join graph connected.
func greedyPlan(q *core.Query, mat [][]graph.NodeID, edges []qedge) []int {
	type scored struct {
		i    int
		cost int64
	}
	var s []scored
	for i, ed := range edges {
		s = append(s, scored{i, int64(len(mat[ed.p])) * int64(len(mat[ed.c]))})
	}
	sort.Slice(s, func(a, b int) bool { return s[a].cost < s[b].cost })
	return connectedOrder(edges, func(remaining []int) int {
		for _, sc := range s {
			for _, r := range remaining {
				if r == sc.i {
					return sc.i
				}
			}
		}
		return remaining[0]
	})
}

// randomPlan returns a uniformly random connected edge order.
func randomPlan(rng *rand.Rand, q *core.Query, edges []qedge) []int {
	return connectedOrder(edges, func(remaining []int) int {
		return remaining[rng.Intn(len(remaining))]
	})
}

// connectedOrder builds an edge order where each prefix is connected,
// choosing among eligible edges with pick.
func connectedOrder(edges []qedge, pick func(eligible []int) int) []int {
	used := make([]bool, len(edges))
	inTree := map[int]bool{}
	var plan []int
	for len(plan) < len(edges) {
		var eligible []int
		for i, ed := range edges {
			if used[i] {
				continue
			}
			if len(plan) == 0 || inTree[ed.p] || inTree[ed.c] {
				eligible = append(eligible, i)
			}
		}
		choice := pick(eligible)
		used[choice] = true
		inTree[edges[choice].p] = true
		inTree[edges[choice].c] = true
		plan = append(plan, choice)
	}
	return plan
}
