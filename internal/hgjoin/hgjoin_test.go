package hgjoin

import (
	"math/rand"
	"testing"

	"gtpq/internal/core"
	"gtpq/internal/graph"
	"gtpq/internal/reach"
)

func diamond() (*graph.Graph, []graph.NodeID) {
	g := graph.New(0, 0)
	a := g.AddNode("a", nil)
	b1 := g.AddNode("b", nil)
	b2 := g.AddNode("b", nil)
	c := g.AddNode("c", nil)
	g.AddEdge(a, b1)
	g.AddEdge(a, b2)
	g.AddEdge(b1, c)
	g.AddEdge(b2, c)
	g.Freeze()
	return g, []graph.NodeID{a, b1, b2, c}
}

func pathQuery() *core.Query {
	q := core.NewQuery()
	a := q.AddRoot("a", core.Label("a"))
	b := q.AddNode("b", core.Backbone, a, core.AD, core.Label("b"))
	c := q.AddNode("c", core.Backbone, b, core.AD, core.Label("c"))
	q.SetOutput(a)
	q.SetOutput(b)
	q.SetOutput(c)
	return q
}

func TestPlusAndStarAgree(t *testing.T) {
	g, _ := diamond()
	q := pathQuery()
	e := New(g)
	plus := e.EvalPlus(q)
	star := e.EvalStar(q)
	if !plus.Equal(star) {
		t.Fatalf("Plus %svs Star %s", plus, star)
	}
	if plus.Len() != 2 { // (a,b1,c) and (a,b2,c)
		t.Fatalf("answer = %s", plus)
	}
}

func TestSingleNodeQuery(t *testing.T) {
	g, ids := diamond()
	q := core.NewQuery()
	b := q.AddRoot("b", core.Label("b"))
	q.SetOutput(b)
	e := New(g)
	for _, ans := range []*core.Answer{e.EvalPlus(q), e.EvalStar(q)} {
		if ans.Len() != 2 || ans.Tuples[0][0] != ids[1] || ans.Tuples[1][0] != ids[2] {
			t.Fatalf("answer = %s", ans)
		}
	}
}

func TestGreedyPlanIsConnected(t *testing.T) {
	q := pathQuery()
	edges := queryEdges(q)
	mat := [][]graph.NodeID{{0}, {1, 2}, {3}}
	plan := greedyPlan(q, mat, edges)
	assertConnected(t, edges, plan)
}

func TestRandomPlansAreConnected(t *testing.T) {
	// Bushy query: root with three children, one grandchild.
	q := core.NewQuery()
	r := q.AddRoot("r", core.Label("r"))
	a := q.AddNode("a", core.Backbone, r, core.AD, core.Label("a"))
	q.AddNode("b", core.Backbone, r, core.AD, core.Label("b"))
	q.AddNode("c", core.Backbone, r, core.AD, core.Label("c"))
	q.AddNode("d", core.Backbone, a, core.AD, core.Label("d"))
	edges := queryEdges(q)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		assertConnected(t, edges, randomPlan(rng, q, edges))
	}
}

func assertConnected(t *testing.T, edges []qedge, plan []int) {
	t.Helper()
	if len(plan) != len(edges) {
		t.Fatalf("plan %v misses edges", plan)
	}
	seen := map[int]bool{}
	inTree := map[int]bool{}
	for i, ei := range plan {
		if seen[ei] {
			t.Fatalf("plan %v repeats edge %d", plan, ei)
		}
		seen[ei] = true
		ed := edges[ei]
		if i > 0 && !inTree[ed.p] && !inTree[ed.c] {
			t.Fatalf("plan %v disconnected at step %d", plan, i)
		}
		inTree[ed.p] = true
		inTree[ed.c] = true
	}
}

func TestStarRecursiveDeletion(t *testing.T) {
	// b2 reaches no c: the graph representation must delete it and a's
	// support must survive through b1.
	g := graph.New(0, 0)
	a := g.AddNode("a", nil)
	b1 := g.AddNode("b", nil)
	b2 := g.AddNode("b", nil)
	c := g.AddNode("c", nil)
	g.AddEdge(a, b1)
	g.AddEdge(a, b2)
	g.AddEdge(b1, c)
	g.Freeze()
	q := pathQuery()
	ans := New(g).EvalStar(q)
	if ans.Len() != 1 || ans.Tuples[0][1] != b1 {
		t.Fatalf("answer = %s, want single (a,b1,c)", ans)
	}
	_ = b2
	_ = a
}

func TestIntermediateCountGrowsWithBadPlan(t *testing.T) {
	// A low-selectivity first edge inflates tuple intermediates; the
	// stats must reflect the chosen (best) plan.
	g := graph.New(0, 0)
	a := g.AddNode("a", nil)
	for i := 0; i < 20; i++ {
		b := g.AddNode("b", nil)
		g.AddEdge(a, b)
		if i == 0 {
			g.AddEdge(b, g.AddNode("c", nil))
		}
	}
	g.Freeze()
	e := New(g)
	q := pathQuery()
	e.EvalPlus(q)
	if e.Stats().Intermediate == 0 {
		t.Error("Intermediate not counted")
	}
	if e.Stats().Index == 0 {
		t.Error("Index lookups not counted")
	}
}

func TestAgainstOracleOnRandomDAGs(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	labels := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 25; trial++ {
		g := graph.New(0, 0)
		n := 6 + r.Intn(20)
		for i := 0; i < n; i++ {
			g.AddNode(labels[r.Intn(len(labels))], nil)
		}
		for e := 0; e < n*2; e++ {
			u := r.Intn(n - 1)
			g.AddEdge(graph.NodeID(u), graph.NodeID(u+1+r.Intn(n-u-1)))
		}
		g.Freeze()
		q := core.NewQuery()
		a := q.AddRoot("a", core.Label("a"))
		b := q.AddNode("b", core.Backbone, a, core.AD, core.Label("b"))
		q.AddNode("c", core.Backbone, a, core.PC, core.Label("c"))
		q.AddNode("d", core.Backbone, b, core.AD, core.Label("d"))
		for _, nd := range q.Nodes {
			q.SetOutput(nd.ID)
		}
		want := core.EvalNaive(g, reach.NewTC(g), q)
		e := New(g)
		if got := e.EvalPlus(q); !want.Equal(got) {
			t.Fatalf("trial %d Plus mismatch", trial)
		}
		if got := e.EvalStar(q); !want.Equal(got) {
			t.Fatalf("trial %d Star mismatch", trial)
		}
	}
}
