// Citations: run tree pattern queries over the synthetic arXiv-like
// citation/authorship graph of §5.2 and demonstrate query minimization
// (Algorithm 1) removing a redundant subsumed branch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gtpq"
	"gtpq/internal/arxiv"
	"gtpq/internal/gtea"
	"gtpq/internal/queries"
)

func main() {
	ig, st := arxiv.Generate(arxiv.DefaultConfig())
	fmt.Printf("arXiv-like graph: %d nodes, %d edges, %d labels\n",
		st.Nodes, st.Edges, st.Labels)

	// Random TPQs sampled from the graph (the §5.2 workload).
	eng := gtea.New(ig)
	r := rand.New(rand.NewSource(42))
	fmt.Println("\nrandom tree pattern queries:")
	for _, size := range []int{5, 7, 9} {
		q := queries.RandomTPQ(r, ig, size)
		start := time.Now()
		ans := eng.Eval(q)
		fmt.Printf("  size %2d: %5d results in %8s\n",
			size, ans.Len(), time.Since(start).Round(time.Microsecond))
	}

	// A hand-written query through the public API: papers in a popular
	// venue citing (directly or transitively) another jnl0 paper whose
	// author list intersects dom0.
	g := gtpq.WrapGraph(ig)
	q, err := gtpq.ParseQuery(`
node  paper label=jnl0 output
node  cited label=jnl0 parent=paper edge=ad output
pnode auth  label=dom0 parent=cited edge=pc
pred  cited: auth`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gtpq.NewEngine(g).Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njnl0 papers citing a dom0-authored jnl0 paper: %d pairs\n", len(res.Rows))

	// Minimization: the second branch is subsumed by the first (same
	// label, weaker constraints), so Algorithm 1 removes it.
	redundant, err := gtpq.ParseQuery(`
node  paper label=jnl0 output
pnode c1 label=jnl1 parent=paper edge=ad
pnode a1 label=dom1 parent=c1 edge=ad
pnode c2 label=jnl1 parent=paper edge=ad
pred  paper: c1 & c2
pred  c1: a1`)
	if err != nil {
		log.Fatal(err)
	}
	min := gtpq.Minimize(redundant)
	fmt.Printf("minimization: %d nodes -> %d nodes (equivalent: %v)\n",
		redundant.Size(), min.Size(), gtpq.EquivalentQueries(redundant, min))
}
