// Example 1 from the paper: a DBLP-like bibliography where
// inproceedings records reference proceedings volumes through crossref
// (an ID/IDREF edge), making the document a graph. The three queries
// Q1–Q3 — conjunction, disjunction, negation over the same tree shape —
// are expressed as GTPQs and evaluated with GTEA.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gtpq"
)

// buildDBLP creates a small bibliography: papers by Alice/Bob/Carol in
// volumes from different years, linked by crossref edges.
func buildDBLP() *gtpq.Graph {
	g := gtpq.NewGraph()
	r := rand.New(rand.NewSource(4))

	type volume struct {
		node gtpq.NodeID
		year int
	}
	var volumes []volume
	for year := 1996; year <= 2012; year += 2 {
		v := g.AddNode("proceedings", nil)
		y := g.AddNode("year", map[string]interface{}{"value": year})
		t := g.AddNode("title", nil)
		g.AddEdge(v, y)
		g.AddEdge(v, t)
		volumes = append(volumes, volume{v, year})
	}
	authors := []string{"Alice", "Bob", "Carol", "Dave"}
	for i := 0; i < 60; i++ {
		p := g.AddNode("inproceedings", nil)
		g.AddEdge(p, g.AddNode("title", nil))
		g.AddEdge(p, g.AddNode("year", nil))
		// 1-3 distinct authors.
		perm := r.Perm(len(authors))
		for _, ai := range perm[:1+r.Intn(3)] {
			a := g.AddNode("author", map[string]interface{}{"value": authors[ai]})
			g.AddEdge(p, a)
		}
		cr := g.AddNode("crossref", nil)
		g.AddEdge(p, cr)
		g.AddRefEdge(cr, volumes[r.Intn(len(volumes))].node)
	}
	return g
}

// paperQuery builds the shared tree of Q1–Q3 with the given structural
// predicate over the Alice/Bob author branches.
func paperQuery(pred string) *gtpq.Query {
	q, err := gtpq.ParseQuery(`
node  paper label=inproceedings output
pnode alice label=author parent=paper edge=pc
pnode bob   label=author parent=paper edge=pc
node  title label=title  parent=paper edge=pc output
node  cross label=crossref parent=paper edge=pc
node  conf  label=proceedings parent=cross edge=pc ref
node  year  label=year parent=conf edge=pc
where alice: value=Alice
where bob:   value=Bob
where year:  value>=2000 value<=2010
pred  paper: ` + pred)
	if err != nil {
		log.Fatal(err)
	}
	return q
}

func main() {
	g := buildDBLP()
	eng := gtpq.NewEngine(g)

	run := func(name, pred, desc string) {
		q := paperQuery(pred)
		res, err := eng.Eval(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s): %d paper/title pairs\n", name, desc, len(res.Rows))
	}
	run("Q1", "alice & bob", "Alice's papers co-authored with Bob, 2000-2010")
	run("Q2", "alice | bob", "papers of either Alice or Bob, 2000-2010")
	run("Q3", "alice & !bob", "Alice's papers NOT co-authored with Bob, 2000-2010")

	// Q2 contains Q1 and Q3 by construction; verify with Theorem 3.
	q1, q2, q3 := paperQuery("alice & bob"), paperQuery("alice | bob"), paperQuery("alice & !bob")
	fmt.Printf("Q1 ⊑ Q2: %v   Q3 ⊑ Q2: %v   Q2 ⊑ Q1: %v\n",
		gtpq.Contained(q1, q2), gtpq.Contained(q3, q2), gtpq.Contained(q2, q1))
}
