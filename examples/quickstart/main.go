// Quickstart: build a small graph, run a GTPQ with disjunction and
// negation through the public API, and inspect the static analyses.
package main

import (
	"fmt"
	"log"

	"gtpq"
)

func main() {
	// A toy catalog: two stores, products with optional reviews.
	g := gtpq.NewGraph()
	store1 := g.AddNode("store", map[string]interface{}{"city": "Berlin"})
	store2 := g.AddNode("store", map[string]interface{}{"city": "Oslo"})
	p1 := g.AddNode("product", map[string]interface{}{"price": 19.0})
	p2 := g.AddNode("product", map[string]interface{}{"price": 120.0})
	p3 := g.AddNode("product", map[string]interface{}{"price": 42.0})
	rev := g.AddNode("review", nil)
	promo := g.AddNode("promo", nil)
	g.AddEdge(store1, p1)
	g.AddEdge(store1, p2)
	g.AddEdge(store2, p3)
	g.AddEdge(p1, rev)
	g.AddEdge(p2, promo)

	// Products that have a review or a promotion, but cost under 100 —
	// a GTPQ with a disjunctive structural predicate.
	q, err := gtpq.ParseQuery(`
node  prod  label=product output
pnode rev   label=review parent=prod edge=ad
pnode promo label=promo  parent=prod edge=ad
pred  prod: rev | promo
where prod: price<100`)
	if err != nil {
		log.Fatal(err)
	}

	eng := gtpq.NewEngine(g)
	res, err := eng.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("products with review-or-promo under 100: %d match(es)\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  node %d (label %s)\n", row[0], g.Label(row[0]))
	}

	// Static analyses from §3 of the paper.
	fmt.Printf("satisfiable: %v\n", gtpq.Satisfiable(q))
	min := gtpq.Minimize(q)
	fmt.Printf("minimized size: %d (was %d)\n", min.Size(), q.Size())
	fmt.Printf("engine stats: input=%d index=%d intermediate=%d\n",
		res.Stats.Input, res.Stats.IndexLookups, res.Stats.Intermediate)
}
