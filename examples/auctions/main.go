// Auctions: evaluate the paper's Fig 11 workload on a generated
// XMark-like auction graph — the conjunctive output-variant queries of
// Table 3 and the logical-predicate queries of Table 4 (disjunction and
// negation), showing how output-node selection and structural
// predicates change result sizes and evaluation cost.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gtpq"
	"gtpq/internal/gtea"
	"gtpq/internal/queries"
	"gtpq/internal/xmark"
)

func main() {
	ig, st := xmark.Generate(xmark.Config{Scale: 1, PersonsPerUnit: 400, Seed: 7})
	fmt.Printf("XMark-like graph: %d nodes, %d edges (%d persons, %d auctions)\n",
		st.Nodes, st.Edges, st.Persons, st.Open)

	eng := gtea.New(ig)
	r := rand.New(rand.NewSource(1))

	fmt.Println("\nTable 3 output-node variants of the Fig 11 query:")
	for _, name := range []string{"Q4", "Q5", "Q6", "Q7", "Q8"} {
		q, err := queries.NewExp1(rand.New(rand.NewSource(2)), name)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ans := eng.Eval(q)
		fmt.Printf("  %s: %4d results in %8s (outputs: %d of %d query nodes)\n",
			name, ans.Len(), time.Since(start).Round(time.Microsecond),
			len(q.Outputs()), q.Size())
	}

	fmt.Println("\nTable 4 GTPQs with logical operators:")
	for _, spec := range queries.Exp2Specs {
		q, err := queries.NewExp2(rand.New(rand.NewSource(3)), spec)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ans := eng.Eval(q)
		fmt.Printf("  %-9s %5d results in %8s\n",
			spec.Name, ans.Len(), time.Since(start).Round(time.Microsecond))
	}

	// The same engine is reachable through the public API.
	g := gtpq.WrapGraph(ig)
	q, err := gtpq.ParseQuery(`
node  auction label=open_auction output
pnode bidder  label=bidder parent=auction edge=pc
pnode seller  label=seller parent=auction edge=pc
pred  auction: bidder & !seller`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gtpq.NewEngine(g).Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauctions with a bidder but no seller element: %d\n", len(res.Rows))
	_ = r
}
