package gtpq

// One benchmark per paper artifact (Tables 1–5, Figs 8–10, 12, plus the
// DESIGN.md ablations). Each benchmark drives the same runner that
// cmd/gtpq-bench uses, at a reduced size; run cmd/gtpq-bench for the
// full printed tables.

import (
	"io"
	"math/rand"
	"testing"

	"gtpq/internal/bench"
	"gtpq/internal/gtea"
	"gtpq/internal/hgjoin"
	"gtpq/internal/queries"
	"gtpq/internal/twig2stack"
	"gtpq/internal/twigstack"
	"gtpq/internal/twigstackd"
	"gtpq/internal/xmark"
)

func benchConfig() bench.Config {
	return bench.Config{
		PersonsPerUnit:  150,
		Scales:          []float64{0.5, 1, 1.5, 2, 4},
		QueriesPerPoint: 3,
		ArxivPerSize:    2,
		Seed:            17,
	}
}

func runExperiment(b *testing.B, f func(r *bench.Runner)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchConfig(), io.Discard)
		f(r)
	}
}

func BenchmarkTable1XMarkStats(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Table1() })
}

func BenchmarkTable2ResultSizes(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Table2() })
}

func BenchmarkFig8aVaryDataSize(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Fig8a() })
}

func BenchmarkFig8bVaryQuery(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Fig8b() })
}

func BenchmarkFig9aWorkload(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Fig9a() })
}

func BenchmarkFig9bSmallResults(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Fig9b() })
}

func BenchmarkFig9cLargeResults(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Fig9c() })
}

func BenchmarkFig9dFiltering(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Fig9d() })
}

func BenchmarkFig10IOCost(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Fig10() })
}

func BenchmarkExp1OutputNodes(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Exp1() })
}

func BenchmarkExp2Disjunction(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Exp2("DIS") })
}

func BenchmarkExp2Negation(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Exp2("NEG") })
}

func BenchmarkExp2DisNeg(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.Exp2("DIS_NEG") })
}

func BenchmarkAblationContours(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.AblationContours() })
}

func BenchmarkAblationPrimeSubtree(b *testing.B) {
	runExperiment(b, func(r *bench.Runner) { r.AblationPrimeSubtree() })
}

// ---- per-engine microbenchmarks on a fixed XMark graph (Q1) ----

func BenchmarkEngineGTEAQ1(b *testing.B) {
	g, _ := xmark.Generate(xmark.Config{Scale: 1, PersonsPerUnit: 300, Seed: 7})
	e := gtea.New(g)
	q := queries.XMarkQ1(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(q)
	}
}

func BenchmarkEngineTwigStackQ1(b *testing.B) {
	g, _ := xmark.Generate(xmark.Config{Scale: 1, PersonsPerUnit: 300, Seed: 7})
	e := twigstack.New(g)
	q := queries.XMarkQ1(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(q)
	}
}

func BenchmarkEngineTwig2StackQ1(b *testing.B) {
	g, _ := xmark.Generate(xmark.Config{Scale: 1, PersonsPerUnit: 300, Seed: 7})
	e := twig2stack.New(g)
	q := queries.XMarkQ1(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(q)
	}
}

func BenchmarkEngineTwigStackDQ1(b *testing.B) {
	g, _ := xmark.Generate(xmark.Config{Scale: 1, PersonsPerUnit: 300, Seed: 7})
	e := twigstackd.New(g)
	q := queries.XMarkQ1(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval(q)
	}
}

func BenchmarkEngineHGJoinPlusQ1(b *testing.B) {
	g, _ := xmark.Generate(xmark.Config{Scale: 1, PersonsPerUnit: 300, Seed: 7})
	e := hgjoin.New(g)
	q := queries.XMarkQ1(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvalPlus(q)
	}
}

func BenchmarkIndexBuild3Hop(b *testing.B) {
	g, _ := xmark.Generate(xmark.Config{Scale: 1, PersonsPerUnit: 300, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gtea.New(g)
	}
}
