// Package gtpq is a library for generalized tree pattern queries
// (GTPQs) over directed, attributed graphs, reproducing "Adding Logical
// Operators to Tree Pattern Queries on Graph-Structured Data" (Zeng,
// Jiang, Zhuge; arXiv:1109.4288).
//
// A GTPQ is a tree pattern whose nodes carry attribute predicates and
// whose structure may be constrained with full propositional logic
// (conjunction, disjunction, negation) over child branches; a subset of
// the nodes is returned. Queries are evaluated with the paper's GTEA
// algorithm: two-round pruning over a reachability index with merged
// contours, then result enumeration from a compact maximal matching
// graph. The reachability index is pluggable — the paper's 3-hop index
// is the default, a bitset transitive closure is registered as "tc",
// and IndexKinds lists everything available; select one with
// NewEngineWithOptions.
//
// An Engine is immutable once built and safe for concurrent Eval calls
// from many goroutines; per-call cost counters come back in each
// Result.
//
// Basic use:
//
//	g := gtpq.NewGraph()
//	a := g.AddNode("a", nil)
//	b := g.AddNode("b", nil)
//	g.AddEdge(a, b)
//
//	q, _ := gtpq.ParseQuery(`
//	    node x label=a output
//	    pnode y label=b parent=x edge=ad
//	    pred x: y`)
//
//	eng := gtpq.NewEngine(g)
//	res, _ := eng.Eval(q)
//
// The package also exposes the paper's static analyses: Satisfiable,
// Contained, EquivalentQueries, and Minimize.
package gtpq

import (
	"context"
	"fmt"
	"io"

	"gtpq/internal/core"
	"gtpq/internal/graph"
	"gtpq/internal/gtea"
	"gtpq/internal/logic"
	"gtpq/internal/qlang"
	"gtpq/internal/reach"
	"gtpq/internal/snapshot"
)

// NodeID identifies a node of a Graph.
type NodeID = graph.NodeID

// Graph is a directed data graph with labeled, attributed nodes.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{g: graph.New(0, 0)} }

// AddNode adds a node with a primary label and optional attributes
// (string or float64 values) and returns its id.
func (g *Graph) AddNode(label string, attrs map[string]interface{}) NodeID {
	var a graph.Attrs
	if len(attrs) > 0 {
		a = make(graph.Attrs, len(attrs))
		for k, v := range attrs {
			switch x := v.(type) {
			case string:
				a[k] = graph.StrV(x)
			case float64:
				a[k] = graph.NumV(x)
			case int:
				a[k] = graph.NumV(float64(x))
			default:
				panic(fmt.Sprintf("gtpq: unsupported attribute type %T", v))
			}
		}
	}
	return g.g.AddNode(label, a)
}

// AddEdge adds a directed edge u -> v.
func (g *Graph) AddEdge(u, v NodeID) { g.g.AddEdge(u, v) }

// AddRefEdge adds a directed ID/IDREF (cross) edge u -> v; tree-based
// algorithms treat it as a reference rather than document structure.
func (g *Graph) AddRefEdge(u, v NodeID) { g.g.AddCrossEdge(u, v) }

// N returns the node count.
func (g *Graph) N() int { return g.g.N() }

// M returns the edge count.
func (g *Graph) M() int { return g.g.M() }

// Label returns the primary label of v.
func (g *Graph) Label(v NodeID) string { return g.g.Label(v) }

// Internal exposes the underlying graph to sibling packages in this
// module (examples, benchmarks).
func (g *Graph) Internal() *graph.Graph { return g.g }

// WrapGraph wraps an internal graph (used by generators).
func WrapGraph(ig *graph.Graph) *Graph { return &Graph{g: ig} }

// Query is a generalized tree pattern query.
type Query struct {
	q *core.Query
}

// ParseQuery parses the qlang DSL (see cmd/gtpq for the grammar).
func ParseQuery(src string) (*Query, error) {
	q, err := qlang.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Format renders the query back into the DSL; the text is canonical
// (stable across semantically equal spellings) and round-trips through
// ParseQuery.
func (q *Query) Format() string { return qlang.Format(q.q) }

// String renders the query tree for diagnostics.
func (q *Query) String() string { return q.q.String() }

// Size returns the number of query nodes.
func (q *Query) Size() int { return q.q.Size() }

// Internal exposes the underlying query.
func (q *Query) Internal() *core.Query { return q.q }

// WrapQuery wraps an internal query.
func WrapQuery(iq *core.Query) *Query { return &Query{q: iq} }

// Builder constructs queries programmatically.
type Builder struct {
	q     *core.Query
	names map[string]int
}

// NewBuilder starts a query with the given root (always a backbone
// node). Pass attribute atoms with Where after adding nodes.
func NewBuilder(rootName, rootLabel string) *Builder {
	b := &Builder{q: core.NewQuery(), names: map[string]int{}}
	b.names[rootName] = b.q.AddRoot(rootName, core.Label(rootLabel))
	return b
}

// edgeType converts the exported edge name.
func edgeType(pc bool) core.EdgeType {
	if pc {
		return core.PC
	}
	return core.AD
}

// Child adds a backbone node under parent; pc selects a parent-child
// edge (false: ancestor-descendant).
func (b *Builder) Child(name, label, parent string, pc bool) *Builder {
	b.names[name] = b.q.AddNode(name, core.Backbone, b.mustName(parent), edgeType(pc), core.Label(label))
	return b
}

// Filter adds a predicate node under parent.
func (b *Builder) Filter(name, label, parent string, pc bool) *Builder {
	b.names[name] = b.q.AddNode(name, core.Predicate, b.mustName(parent), edgeType(pc), core.Label(label))
	return b
}

// Ref marks the edge from name's parent as an ID/IDREF reference.
func (b *Builder) Ref(name string) *Builder {
	b.q.SetViaRef(b.mustName(name))
	return b
}

// Output marks nodes as output.
func (b *Builder) Output(names ...string) *Builder {
	for _, n := range names {
		b.q.SetOutput(b.mustName(n))
	}
	return b
}

// Predicate attaches a structural predicate (formula over child names,
// e.g. "bidder | !seller") to node name.
func (b *Builder) Predicate(name, formula string) *Builder {
	f, err := logic.Parse(formula, func(child string) (int, error) {
		id, ok := b.names[child]
		if !ok {
			return 0, fmt.Errorf("gtpq: unknown node %q in predicate", child)
		}
		return id, nil
	})
	if err != nil {
		panic(err)
	}
	b.q.SetStruct(b.mustName(name), f)
	return b
}

// Where adds an attribute comparison to node name; op is one of
// = != < <= > >=.
func (b *Builder) Where(name, attr, op string, value interface{}) *Builder {
	var o core.Op
	switch op {
	case "=":
		o = core.EQ
	case "!=":
		o = core.NE
	case "<":
		o = core.LT
	case "<=":
		o = core.LE
	case ">":
		o = core.GT
	case ">=":
		o = core.GE
	default:
		panic(fmt.Sprintf("gtpq: unknown operator %q", op))
	}
	var v graph.Value
	switch x := value.(type) {
	case string:
		v = graph.StrV(x)
	case float64:
		v = graph.NumV(x)
	case int:
		v = graph.NumV(float64(x))
	default:
		panic(fmt.Sprintf("gtpq: unsupported value type %T", value))
	}
	u := b.mustName(name)
	b.q.Nodes[u].Attr = append(b.q.Nodes[u].Attr, core.Atom{Attr: attr, Op: o, Val: v})
	return b
}

// Build validates and returns the query.
func (b *Builder) Build() (*Query, error) {
	if len(b.q.Outputs()) == 0 {
		b.q.SetOutput(b.q.Root)
	}
	if err := b.q.Validate(); err != nil {
		return nil, err
	}
	return &Query{q: b.q}, nil
}

func (b *Builder) mustName(name string) int {
	id, ok := b.names[name]
	if !ok {
		panic(fmt.Sprintf("gtpq: unknown node %q", name))
	}
	return id
}

// Result is a query answer: one row per match projection, with columns
// named after the output query nodes.
type Result struct {
	// Columns holds the output node names in tuple order.
	Columns []string
	// Rows holds the distinct result tuples.
	Rows [][]NodeID
	// Stats reports the work performed.
	Stats EvalStats
}

// EvalStats mirrors the paper's cost metrics.
type EvalStats struct {
	// Input counts the vertices scanned into the evaluation.
	Input int64
	// IndexLookups counts reachability-index probes.
	IndexLookups int64
	// Intermediate counts intermediate result tuples materialized.
	Intermediate int64
}

// EngineOptions select the engine's reachability backend.
type EngineOptions struct {
	// Index names the reachability index kind; IndexKinds lists the
	// registered backends. Empty selects the default (the paper's
	// 3-hop index).
	Index string
	// Parallel builds the index with multiple goroutines (one shard
	// per SCC level); the built index answers identically to a serial
	// build.
	Parallel bool
}

// Engine evaluates queries over one graph; building it constructs the
// selected reachability index. An Engine is immutable and safe for
// concurrent Eval calls.
type Engine struct {
	e *gtea.Engine
}

// NewEngine builds a GTEA engine for g with the default 3-hop index.
func NewEngine(g *Graph) *Engine {
	return &Engine{e: gtea.New(g.g)}
}

// NewEngineWithOptions builds a GTEA engine for g with the named index
// backend; it fails on unknown kinds or backends that refuse the graph
// (e.g. "tc" beyond its size limit).
func NewEngineWithOptions(g *Graph, opt EngineOptions) (*Engine, error) {
	e, err := gtea.NewWithOptions(g.g, gtea.Options{Index: opt.Index, Parallel: opt.Parallel})
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// IndexKinds lists the registered reachability backends, sorted.
func IndexKinds() []string { return reach.Kinds() }

// IndexKind reports which backend this engine evaluates over.
func (e *Engine) IndexKind() string { return e.e.H.Kind() }

// Graph returns the data graph this engine evaluates over.
func (e *Engine) Graph() *Graph { return &Graph{g: e.e.G} }

// SaveSnapshot writes the engine's graph together with its built
// reachability index to w (see internal/snapshot for the format).
// LoadSnapshot restores the engine without re-running index
// construction, so a server cold-starts in milliseconds.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	return snapshot.Save(w, e.e.G, e.e.H)
}

// LoadSnapshot reads a snapshot written by SaveSnapshot and returns a
// ready engine; the reachability index is revived, not rebuilt.
func LoadSnapshot(r io.Reader) (*Engine, error) {
	g, h, err := snapshot.Load(r)
	if err != nil {
		return nil, err
	}
	return &Engine{e: gtea.NewWithIndex(g, h)}, nil
}

// Eval evaluates q. Safe for concurrent use; the returned Stats are
// specific to this call. A query with no output nodes returns its root
// (the same default Builder.Build and ParseQuery apply).
func (e *Engine) Eval(q *Query) (*Result, error) {
	return e.EvalCtx(context.Background(), q)
}

// EvalCtx evaluates q under ctx: when the context is cancelled or its
// deadline passes mid-evaluation, the work is aborted at the next
// pruning or enumeration boundary and ctx's error returned. Safe for
// concurrent use.
func (e *Engine) EvalCtx(ctx context.Context, q *Query) (*Result, error) {
	iq := q.q
	if err := iq.Validate(); err != nil {
		return nil, err
	}
	if len(iq.Outputs()) == 0 {
		// Same root default as Builder.Build and ParseQuery; clone so a
		// shared *Query is never mutated under a concurrent evaluation.
		iq = iq.Clone()
		iq.SetOutput(iq.Root)
	}
	ans, st, err := e.e.EvalStatsCtx(ctx, iq)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(ans.Out))
	for i, u := range ans.Out {
		cols[i] = iq.Nodes[u].Name
	}
	return &Result{
		Columns: cols,
		Rows:    ans.Tuples,
		Stats: EvalStats{
			Input:        st.Input,
			IndexLookups: st.Index,
			Intermediate: st.Intermediate,
		},
	}, nil
}

// GroupedResult nests the matches below one output node per combination
// of the remaining outputs (the §4.3 group operator).
type GroupedResult struct {
	// KeyColumns / MemberColumns name the outer and nested outputs.
	KeyColumns    []string
	MemberColumns []string
	Groups        []GroupRow
}

// GroupRow is one group: the key images and the distinct nested tuples.
type GroupRow struct {
	Key     []NodeID
	Members [][]NodeID
}

// EvalGrouped evaluates q, grouping results by the named output node:
// matches of the output nodes below it are nested per group.
func (e *Engine) EvalGrouped(q *Query, groupNode string) (*GroupedResult, error) {
	if err := q.q.Validate(); err != nil {
		return nil, err
	}
	id, ok := q.q.NameToID()[groupNode]
	if !ok {
		return nil, fmt.Errorf("gtpq: unknown node %q", groupNode)
	}
	if !q.q.Nodes[id].Output {
		return nil, fmt.Errorf("gtpq: %q is not an output node", groupNode)
	}
	ga := e.e.EvalGrouped(q.q, id)
	out := &GroupedResult{}
	for _, u := range ga.KeyOut {
		out.KeyColumns = append(out.KeyColumns, q.q.Nodes[u].Name)
	}
	for _, u := range ga.MemberOut {
		out.MemberColumns = append(out.MemberColumns, q.q.Nodes[u].Name)
	}
	for _, g := range ga.Groups {
		out.Groups = append(out.Groups, GroupRow{Key: g.Key, Members: g.Members})
	}
	return out, nil
}

// Satisfiable reports whether some data graph yields a non-empty answer
// (Theorem 1; NP-complete with negation, linear for union-conjunctive
// queries).
func Satisfiable(q *Query) bool { return core.Satisfiable(q.q) }

// Contained reports Q1 ⊑ Q2: every answer of q1 on any graph is an
// answer of q2 (Theorem 3).
func Contained(q1, q2 *Query) bool { return core.Contained(q1.q, q2.q) }

// EquivalentQueries reports Q1 ≡ Q2.
func EquivalentQueries(q1, q2 *Query) bool { return core.Equivalent(q1.q, q2.q) }

// Minimize returns a minimum equivalent query (Algorithm 1; unique up
// to isomorphism by Proposition 5).
func Minimize(q *Query) *Query { return &Query{q: core.Minimize(q.q)} }
