package gtpq

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// demoGraph: a0 -> b1 -> c2 ; a0 -> c3 ; a4 -> b5 (no c below a4's b).
func demoGraph() (*Graph, []NodeID) {
	g := NewGraph()
	a0 := g.AddNode("a", nil)
	b1 := g.AddNode("b", nil)
	c2 := g.AddNode("c", nil)
	c3 := g.AddNode("c", nil)
	a4 := g.AddNode("a", nil)
	b5 := g.AddNode("b", nil)
	g.AddEdge(a0, b1)
	g.AddEdge(b1, c2)
	g.AddEdge(a0, c3)
	g.AddEdge(a4, b5)
	return g, []NodeID{a0, b1, c2, c3, a4, b5}
}

func TestEndToEndDSL(t *testing.T) {
	g, ids := demoGraph()
	q, err := ParseQuery(`
node x label=a output
pnode y label=c parent=x edge=ad
pred x: y`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(g).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != ids[0] {
		t.Fatalf("rows = %v, want [[a0]]", res.Rows)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "x" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Stats.Input == 0 {
		t.Error("stats not populated")
	}
}

func TestBuilderNegation(t *testing.T) {
	g, ids := demoGraph()
	q, err := NewBuilder("x", "a").
		Filter("y", "c", "x", false).
		Predicate("x", "!y").
		Output("x").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(g).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != ids[4] {
		t.Fatalf("rows = %v, want [[a4]]", res.Rows)
	}
}

func TestBuilderWhereAndAttrs(t *testing.T) {
	g := NewGraph()
	v1 := g.AddNode("p", map[string]interface{}{"year": 2005})
	g.AddNode("p", map[string]interface{}{"year": 1999})
	q, err := NewBuilder("x", "p").Where("x", "year", ">=", 2000).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(g).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != v1 {
		t.Fatalf("rows = %v, want [[v1]]", res.Rows)
	}
}

func TestStaticAnalyses(t *testing.T) {
	mk := func(pred string) *Query {
		q, err := NewBuilder("x", "a").
			Filter("y", "b", "x", false).
			Predicate("x", pred).
			Output("x").
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	if !Satisfiable(mk("y")) {
		t.Error("y should be satisfiable")
	}
	if Satisfiable(mk("y & !y")) {
		t.Error("y & !y should be unsatisfiable")
	}
	strict, loose := mk("y"), mk("y | !y")
	if !Contained(strict, loose) {
		t.Error("strict ⊑ loose expected")
	}
	if Contained(loose, strict) {
		t.Error("loose ⊑ strict must fail")
	}
	if !EquivalentQueries(strict, strict) {
		t.Error("self equivalence failed")
	}
	m := Minimize(loose)
	if m.Size() >= loose.Size() {
		t.Errorf("Minimize(y|!y) should drop the redundant filter: %d -> %d", loose.Size(), m.Size())
	}
}

func TestQueryFormatRoundTrip(t *testing.T) {
	q, err := ParseQuery(`
node x label=a output
pnode y label=b parent=x edge=pc
pred x: !y`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ParseQuery(q.Format())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, q.Format())
	}
	if !EquivalentQueries(q, q2) {
		t.Error("format round trip changed semantics")
	}
	if !strings.Contains(q.String(), "!y") {
		t.Errorf("String() should show the predicate: %s", q.String())
	}
}

func TestEvalGroupedAPI(t *testing.T) {
	g := NewGraph()
	s1 := g.AddNode("store", nil)
	s2 := g.AddNode("store", nil)
	p1 := g.AddNode("product", nil)
	p2 := g.AddNode("product", nil)
	p3 := g.AddNode("product", nil)
	g.AddEdge(s1, p1)
	g.AddEdge(s1, p2)
	g.AddEdge(s2, p3)
	q, err := ParseQuery(`
node s label=store output
node p label=product parent=s edge=pc output`)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := NewEngine(g).EvalGrouped(q, "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 2 {
		t.Fatalf("groups = %d", len(gr.Groups))
	}
	if len(gr.Groups[0].Members) != 2 || len(gr.Groups[1].Members) != 1 {
		t.Fatalf("member counts wrong: %+v", gr.Groups)
	}
	if gr.KeyColumns[0] != "s" || gr.MemberColumns[0] != "p" {
		t.Errorf("columns: %v / %v", gr.KeyColumns, gr.MemberColumns)
	}
	if _, err := NewEngine(g).EvalGrouped(q, "zzz"); err == nil {
		t.Error("unknown group node should error")
	}
}

func TestEvalRejectsInvalidQuery(t *testing.T) {
	g, _ := demoGraph()
	// Build an invalid query by hand: predicate output node.
	q, err := NewBuilder("x", "a").Filter("y", "b", "x", false).Build()
	if err != nil {
		t.Fatal(err)
	}
	q.Internal().Nodes[1].Output = true
	if _, err := NewEngine(g).Eval(q); err == nil {
		t.Error("Eval should reject invalid queries")
	}
}

func TestRefEdgesThroughAPI(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("a", nil)
	r := g.AddNode("ref", nil)
	b := g.AddNode("b", nil)
	g.AddEdge(a, r)
	g.AddRefEdge(r, b)
	q, err := ParseQuery(`
node x label=a
node re label=ref parent=x edge=pc
node y label=b parent=re edge=pc ref output`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(g).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != b {
		t.Fatalf("rows = %v", res.Rows)
	}
	_ = a
}

func TestEngineOptionsBackends(t *testing.T) {
	g, ids := demoGraph()
	q, err := ParseQuery(`
node x label=a output
pnode y label=c parent=x edge=ad
pred x: y`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := IndexKinds()
	if len(kinds) < 2 {
		t.Fatalf("IndexKinds() = %v, want at least two backends", kinds)
	}
	for _, kind := range kinds {
		for _, parallel := range []bool{false, true} {
			e, err := NewEngineWithOptions(g, EngineOptions{Index: kind, Parallel: parallel})
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if e.IndexKind() != kind {
				t.Errorf("IndexKind() = %q, want %q", e.IndexKind(), kind)
			}
			res, err := e.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0] != ids[0] {
				t.Fatalf("%s: rows = %v, want [[a0]]", kind, res.Rows)
			}
		}
	}
	if _, err := NewEngineWithOptions(g, EngineOptions{Index: "bogus"}); err == nil {
		t.Fatal("expected an error for an unknown index kind")
	}
}

func TestEngineConcurrentEvalPublicAPI(t *testing.T) {
	g, ids := demoGraph()
	q, err := ParseQuery(`
node x label=a output
pnode y label=c parent=x edge=ad
pred x: y`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	var wg sync.WaitGroup
	bad := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Eval(q)
			if err != nil {
				bad <- err.Error()
				return
			}
			if len(res.Rows) != 1 || res.Rows[0][0] != ids[0] {
				bad <- "wrong rows under concurrency"
			}
		}()
	}
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Fatal(msg)
	}
}

// TestEvalDefaultsOutputsToRoot checks the output default is applied
// uniformly: a query that reaches Eval with no outputs (possible via
// WrapQuery or a hand-built core query) returns its root, exactly as
// Builder.Build and ParseQuery default — and the shared query itself
// is not mutated.
func TestEvalDefaultsOutputsToRoot(t *testing.T) {
	g, ids := demoGraph()
	q, err := NewBuilder("x", "a").Filter("y", "c", "x", false).Predicate("x", "y").Build()
	if err != nil {
		t.Fatal(err)
	}
	// Strip the outputs Build defaulted, simulating WrapQuery callers.
	for _, n := range q.Internal().Nodes {
		n.Output = false
	}
	res, err := NewEngine(g).Eval(q)
	if err != nil {
		t.Fatalf("Eval rejected a query with no outputs: %v", err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "x" {
		t.Fatalf("columns = %v, want [x]", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != ids[0] {
		t.Fatalf("rows = %v, want [[a0]]", res.Rows)
	}
	if len(q.Internal().Outputs()) != 0 {
		t.Fatal("Eval mutated the caller's query")
	}
}

// TestEvalCtxPublicAPI checks context plumbing through the public
// Engine: a cancelled context aborts with its error.
func TestEvalCtxPublicAPI(t *testing.T) {
	g, _ := demoGraph()
	q, err := ParseQuery("node x label=a output")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	ctx, cancel := context.WithCancel(context.Background())
	if res, err := e.EvalCtx(ctx, q); err != nil || len(res.Rows) != 2 {
		t.Fatalf("live ctx: res=%v err=%v", res, err)
	}
	cancel()
	if _, err := e.EvalCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err=%v, want context.Canceled", err)
	}
}

// TestSnapshotPublicAPI round-trips an engine through the exported
// SaveSnapshot/LoadSnapshot pair.
func TestSnapshotPublicAPI(t *testing.T) {
	g, ids := demoGraph()
	q, err := ParseQuery(`
node x label=a output
pnode y label=c parent=x edge=ad
pred x: y`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.IndexKind() != e.IndexKind() {
		t.Fatalf("kind %q != %q", e2.IndexKind(), e.IndexKind())
	}
	if e2.Graph().N() != g.N() || e2.Graph().M() != g.M() {
		t.Fatalf("graph shape changed: %d/%d", e2.Graph().N(), e2.Graph().M())
	}
	res, err := e2.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != ids[0] {
		t.Fatalf("rows after snapshot = %v", res.Rows)
	}
}
