module gtpq

go 1.24
