// Command gtpq-bench regenerates the paper's tables and figures
// (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	gtpq-bench                         # everything, default sizes
//	gtpq-bench -exp f8a,f10            # selected experiments
//	gtpq-bench -persons 1500 -queries 10 -persize 15   # paper-sized
//	gtpq-bench -exp none -json bench.json              # machine-readable suite only
//
// -json writes the regression-trackable measurements (index build
// times, per-query ns/op, stats counters, concurrency throughput) as
// one JSON document for BENCH_*.json trajectory files; CI runs it as a
// smoke test and archives the output. -check compares the same records
// against a committed baseline (bench-baseline.json) and fails beyond
// -tolerance — the CI benchmark regression gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gtpq/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtpq-bench: ")
	var (
		exp       = flag.String("exp", "all", "comma-separated experiments: t1,t2,f8a,f8b,f9a,f9b,f9c,f9d,f10,e1,e2dis,e2neg,e2disneg,a2,a3,ix,conc,shard,cache,delta,plan,obs,stream,repl,sub,all (or none)")
		persons   = flag.Int("persons", 600, "XMark persons per scale unit")
		queries   = flag.Int("queries", 5, "query instances averaged per data point")
		perSize   = flag.Int("persize", 5, "arXiv queries kept per size and result group")
		seed      = flag.Int64("seed", 17, "workload seed")
		jsonPath  = flag.String("json", "", "write machine-readable records to this file ('-' for stdout)")
		checkPath = flag.String("check", "", "compare this run's records against a baseline JSON file and exit non-zero on latency regressions (the CI gate)")
		tolerance = flag.Float64("tolerance", 0.5, "allowed latency regression for -check (0.5 = fail beyond +50%)")
	)
	flag.Parse()

	r := bench.NewRunner(bench.Config{
		PersonsPerUnit:  *persons,
		QueriesPerPoint: *queries,
		ArxivPerSize:    *perSize,
		Seed:            *seed,
	}, os.Stdout)

	runners := map[string]func(){
		"t1":       r.Table1,
		"t2":       r.Table2,
		"f8a":      r.Fig8a,
		"f8b":      r.Fig8b,
		"f9a":      r.Fig9a,
		"f9b":      r.Fig9b,
		"f9c":      r.Fig9c,
		"f9d":      r.Fig9d,
		"f10":      r.Fig10,
		"e1":       r.Exp1,
		"e2dis":    func() { r.Exp2("DIS") },
		"e2neg":    func() { r.Exp2("NEG") },
		"e2disneg": func() { r.Exp2("DIS_NEG") },
		"a2":       r.AblationContours,
		"a3":       r.AblationPrimeSubtree,
		"ix":       r.IndexBackends,
		"conc":     r.Concurrency,
		"shard":    r.Sharding,
		"cache":    r.ResultCache,
		"delta":    r.Delta,
		"plan":     r.Planning,
		"obs":      r.Observability,
		"stream":   r.Stream,
		"repl":     r.Repl,
		"sub":      r.Sub,
		"all":      r.All,
	}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		if name == "none" {
			continue
		}
		f, ok := runners[name]
		if !ok {
			log.Fatalf("unknown experiment %q", name)
		}
		f()
		fmt.Println()
	}

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			out = f
		}
		if err := r.WriteJSON(out); err != nil {
			log.Fatal(err)
		}
		if *jsonPath != "-" {
			if err := out.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *jsonPath)
		}
	}

	if *checkPath != "" {
		// The records are memoized, so the gate compares exactly what
		// -json wrote (or runs the suite now if it didn't).
		ok, err := r.CheckFile(*checkPath, *tolerance, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatal("benchmark regression gate failed")
		}
	}
}
