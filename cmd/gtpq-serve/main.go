// Command gtpq-serve runs the GTPQ query server over a directory of
// datasets (see internal/catalog for the on-disk layout and
// internal/server for the HTTP API).
//
// Usage:
//
//	gtpq-serve -data ./datasets                       # serve on :8080
//	gtpq-serve -data ./datasets -addr :9000 -workers 16 -queue 128
//	gtpq-serve -data ./datasets -snapshots -preload citations
//	gtpq-serve -data ./datasets -index tc -parallel
//	gtpq-serve -data ./datasets -cache-bytes 268435456  # 256 MiB result cache
//	gtpq-serve -data ./datasets -compact-after 1000     # auto-fold delta logs
//
// Datasets are `<name>.json` / `<name>.json.gz` graph files (the
// graphio format), `<name>.snap` index snapshots (loaded without
// rebuilding the reachability index), or `<name>/` sharded dataset
// directories written by gtpq-shard (hash-verified at load and served
// with scatter-gather; see internal/shard). With -snapshots, the
// server writes a snapshot the first time it builds an index from raw
// JSON, so subsequent cold starts are fast. Repeated queries answer
// from a byte-bounded result cache (-cache-bytes, default 64 MiB, 0
// disables; see internal/qcache) invalidated by hot-reload
// generations.
//
// API sketch (see the README for full curl examples):
//
//	POST /query     {"dataset":"d","query":"node x label=a output","timeout_ms":100}
//	POST /query     {"dataset":"d","queries":["...","..."]}
//	POST /query     {"dataset":"d","query":"...","limit":100,"cursor":"..."}  paged
//	POST /query     with Accept: application/x-ndjson — streamed rows
//	POST /subscribe {"dataset":"d","query":"..."} — SSE stream of result changes
//	POST /update    {"dataset":"d","nodes":[{"label":"a"}],"edges":[{"from":0,"to":9}]}
//	GET  /datasets
//	GET  /stats
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/slowlog    slow-query ring (see -slowlog-ms)
//	GET  /healthz
//
// Datasets are live-mutable: POST /update appends vertices and edges,
// durably (fsynced delta log replayed on restart) and served
// immediately through a reachability overlay while the expensive base
// index stays frozen; -compact-after bounds the overlay by folding the
// log into a fresh snapshot (or re-sharded directory) once enough
// mutations accumulate. See internal/delta.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gtpq/internal/catalog"
	"gtpq/internal/obs"
	"gtpq/internal/reach"
	"gtpq/internal/repl"
	"gtpq/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtpq-serve: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data", "", "dataset directory (required)")
		index     = flag.String("index", "", "reachability backend for fresh builds: "+strings.Join(reach.Kinds(), ", ")+" (default threehop; snapshots carry their own)")
		parallel  = flag.Bool("parallel", false, "build indexes with multiple goroutines")
		snapshots = flag.Bool("snapshots", false, "write <name>.snap after building an index from raw JSON")
		preload   = flag.String("preload", "", "comma-separated datasets to load before listening ('all' for every dataset)")
		workers   = flag.Int("workers", 0, "max concurrent evaluations (default GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "max evaluations waiting for a worker (default 4x workers)")
		timeout   = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTime   = flag.Duration("max-timeout", 30*time.Second, "upper bound on client-requested deadlines")
		maxRows   = flag.Int("max-rows", 10000, "max result rows returned per query; doubles as the default page size for paged and NDJSON responses (0: unlimited)")
		streamBuf = flag.Int("stream-buffer", 256, "NDJSON rows written between explicit flushes on streamed responses")
		cacheB    = flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (0: disable caching)")
		compactN  = flag.Int("compact-after", 0, "fold a dataset's delta log into a fresh snapshot once this many mutations are pending (0: never auto-compact)")
		plan      = flag.String("plan", "on", "cost-based pruning order + multiway kernels: on or off (off restores the paper's fixed post-order)")
		costQuota = flag.Int64("cost-quota", 0, "reject queries whose estimated candidate cost exceeds this before admission (0: no limit)")
		maxSubs   = flag.Int("max-subs", 1024, "max concurrently attached standing-query streams (POST /subscribe)")
		slowMS    = flag.Int64("slowlog-ms", 250, "record queries at least this slow (with per-stage trace timings) in GET /debug/slowlog (0: disable)")
		slowSize  = flag.Int("slowlog-size", 128, "slow-query ring capacity")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty: disabled)")
		logFormat = flag.String("log-format", "text", "request logging: text (startup logs only) or json (one structured line per request on stderr)")
		logSample = flag.Int("log-sample", 1, "with -log-format=json, log every Nth request")

		follow    = flag.String("follow", "", "primary base URL to replicate from; makes this server a read-only replica (see internal/repl)")
		followDS  = flag.String("follow-datasets", "", "comma-separated datasets to follow (default: everything the primary serves)")
		maxLag    = flag.Int("max-lag", 64, "with -follow, batches behind the primary before /readyz reports not-ready")
		replMin   = flag.Duration("repl-retry-min", 50*time.Millisecond, "with -follow, first retry delay after a failed fetch")
		replMax   = flag.Duration("repl-retry-max", 5*time.Second, "with -follow, retry delay ceiling")
		replChunk = flag.Int("repl-chunk", 1<<20, "with -follow, max log bytes fetched per round")
		replWait  = flag.Duration("repl-wait", 2*time.Second, "with -follow, long-poll budget while caught up")
		replSeed  = flag.Int64("repl-seed", 0, "with -follow, jitter seed (0: fixed default; give each replica its own to decorrelate retries)")
	)
	flag.Parse()
	if *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	var noPlan bool
	switch *plan {
	case "on", "true", "1":
	case "off", "false", "0":
		noPlan = true
	default:
		log.Fatalf("invalid -plan value %q (want on or off)", *plan)
	}

	cat, err := catalog.Open(*dataDir, catalog.Options{
		Index:        *index,
		Parallel:     *parallel,
		AutoSnapshot: *snapshots,
		NoPlan:       noPlan,
	})
	if err != nil {
		log.Fatal(err)
	}
	names, err := cat.Names()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("catalog %s: %d dataset(s): %s", *dataDir, len(names), strings.Join(names, ", "))

	if *preload != "" {
		targets := strings.Split(*preload, ",")
		if *preload == "all" {
			targets = names
		}
		for _, name := range targets {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			ds, err := cat.Acquire(name)
			if err != nil {
				log.Fatalf("preload %s: %v", name, err)
			}
			how := "built"
			if ds.FromSnapshot {
				how = "snapshot"
			}
			if ds.Sharded {
				how = "sharded"
			}
			log.Printf("preloaded %s: %d nodes, %d edges, %s index (%s, %s)",
				name, ds.Nodes(), ds.Edges(), ds.Engine.IndexKind(), how,
				ds.LoadTime.Round(time.Millisecond))
			ds.Release() // stays cached
		}
	}

	cfg := server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTime,
		MaxRows:          *maxRows,
		StreamBuffer:     *streamBuf,
		CacheBytes:       *cacheB,
		CompactAfter:     *compactN,
		CostQuota:        *costQuota,
		MaxSubs:          *maxSubs,
		SlowLogThreshold: time.Duration(*slowMS) * time.Millisecond,
		SlowLogSize:      *slowSize,
		AccessLogSample:  *logSample,
	}

	// Replica mode: tail the primary's delta logs, refuse direct writes,
	// and report /readyz only while every followed dataset is in sync
	// within -max-lag (the router routes around anything that is not).
	// The tailer's gtpq_repl_* metrics share the server's registry so one
	// /metrics scrape covers both.
	var tailer *repl.Tailer
	if *follow != "" {
		var followList []string
		for _, name := range strings.Split(*followDS, ",") {
			if name = strings.TrimSpace(name); name != "" {
				followList = append(followList, name)
			}
		}
		tailer = repl.NewTailer(cat,
			&repl.HTTPClient{BaseURL: strings.TrimRight(*follow, "/")},
			repl.TailerConfig{
				Datasets:   followList,
				MaxLag:     *maxLag,
				ChunkBytes: *replChunk,
				PollWait:   *replWait,
				Backoff:    repl.Backoff{Min: *replMin, Max: *replMax},
				Seed:       *replSeed,
				Logf:       log.Printf,
			})
		reg := obs.NewRegistry()
		tailer.Register(reg)
		cfg.Registry = reg
		cfg.ReadOnly = true
		cfg.ReadyCheck = tailer.Ready
	}
	switch *logFormat {
	case "text", "":
	case "json":
		cfg.AccessLog = os.Stderr
	default:
		log.Fatalf("invalid -log-format value %q (want text or json)", *logFormat)
	}
	srv := server.New(cat, cfg)

	if tailer != nil {
		if err := tailer.Start(); err != nil {
			log.Fatalf("replication: %v", err)
		}
		log.Printf("replica mode: following %s (max lag %d batches)", *follow, *maxLag)
	}

	if *pprofAddr != "" {
		// pprof stays off the API listener: profiling endpoints expose
		// internals and should bind somewhere tighter (localhost, an
		// ops-only interface). Handlers are mounted explicitly — the
		// blank import would register on DefaultServeMux, which the API
		// server never serves.
		go func() {
			pm := http.NewServeMux()
			pm.HandleFunc("/debug/pprof/", pprof.Index)
			pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
			pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting new
	// connections, drain every admitted evaluation and update within
	// the deadline, then flush the delta logs — an acknowledged /update
	// must never be lost to a restart.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down: draining in-flight work")
		ctx, cancel := context.WithTimeout(context.Background(), *maxTime)
		defer cancel()
		// Standing-query streams first: open SSE connections count as
		// active for Shutdown and would stall the drain until clients
		// hung up on their own.
		srv.CloseSubscriptions()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := srv.Drain(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if tailer != nil {
			tailer.Stop() // before Close: no applies against a closing catalog
		}
		if err := cat.Close(); err != nil {
			log.Printf("shutdown: flushing delta logs: %v", err)
		} else {
			log.Print("shutdown: delta logs flushed")
		}
		close(done)
	}()

	log.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
