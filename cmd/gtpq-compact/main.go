// Command gtpq-compact folds pending delta logs into fresh bases, the
// offline counterpart of gtpq-serve's -compact-after: for each named
// dataset (or every dataset with -all), the extended graph gets a
// from-scratch reachability index, flat datasets a new `<name>.snap`,
// sharded datasets an atomically-replaced re-partitioned directory,
// and the delta log is deleted. Run it during maintenance windows to
// keep the unsnapshotted window — and the overlay's per-query frontier
// cost — small.
//
// WARNING: never run gtpq-compact against a directory a live
// gtpq-serve is writing to. The server holds its own open log handles
// and serializes appends in-process only; an external fold deletes
// the log file underneath it and updates the server acknowledges
// afterwards land in an unlinked inode — durably fsynced, silently
// gone on the next restart. For online folding use the server's
// -compact-after flag, which shares the in-process serialization.
//
// Usage:
//
//	gtpq-compact -data ./datasets citations dblp
//	gtpq-compact -data ./datasets -all
//	gtpq-compact -data ./datasets -parallel -all
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"gtpq/internal/catalog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtpq-compact: ")
	var (
		dataDir  = flag.String("data", "", "dataset directory (required)")
		all      = flag.Bool("all", false, "compact every dataset in the directory")
		parallel = flag.Bool("parallel", false, "build rebuilt indexes with multiple goroutines")
	)
	flag.Parse()
	if *dataDir == "" || (!*all && flag.NArg() == 0) {
		flag.Usage()
		os.Exit(2)
	}

	cat, err := catalog.Open(*dataDir, catalog.Options{Parallel: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	defer cat.Close()

	names := flag.Args()
	if *all {
		names, err = cat.Names()
		if err != nil {
			log.Fatal(err)
		}
	}

	folded := 0
	for _, name := range names {
		ds, err := cat.Acquire(name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		pending := ds.PendingDeltas
		ds.Release()
		if pending == 0 {
			log.Printf("%s: no pending deltas", name)
			continue
		}
		start := time.Now()
		dsc, err := cat.Compact(name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		kind := dsc.Engine.IndexKind()
		log.Printf("%s: folded %d pending mutations into a fresh %s base (%d nodes, %d edges) in %s",
			name, pending, kind, dsc.Nodes(), dsc.Edges(), time.Since(start).Round(time.Millisecond))
		dsc.Release()
		folded++
	}
	log.Printf("compacted %d of %d dataset(s)", folded, len(names))
}
