// Command gtpq-shard partitions one logical dataset into a sharded
// dataset directory that gtpq-serve's catalog recognizes and serves
// with scatter-gather (see internal/shard for the partitioning modes
// and the manifest format).
//
// Usage:
//
//	gtpq-shard -in data.json -out datasets/data -k 4
//	gtpq-shard -in data.snap -out datasets/data -k 8 -mode hash
//	gtpq-shard -in data.json.gz -out datasets/data -k 4 -index tc -parallel
//	gtpq-shard -verify datasets/data
//
// The output directory name is the dataset name the catalog serves it
// under (override with -name). -mode auto splits whole weakly-connected
// components when the graph has at least K of them, and falls back to
// hash partitioning with reachability-closure replication otherwise.
// -verify re-opens an existing shard directory, checks every manifest
// content hash, and reports the shard layout without writing anything.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gtpq/internal/graph"
	"gtpq/internal/graphio"
	"gtpq/internal/reach"
	"gtpq/internal/shard"
	"gtpq/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtpq-shard: ")
	var (
		in       = flag.String("in", "", "input graph: JSON, gzipped JSON, or a .snap snapshot")
		out      = flag.String("out", "", "output shard directory (created if missing)")
		k        = flag.Int("k", 4, "number of shards")
		mode     = flag.String("mode", "auto", "partitioning mode: auto, wcc, hash")
		index    = flag.String("index", "", "reachability backend per shard: "+strings.Join(reach.Kinds(), ", ")+" (default threehop)")
		parallel = flag.Bool("parallel", false, "build per-shard indexes with multiple goroutines")
		name     = flag.String("name", "", "dataset name recorded in the manifest (default: base name of -out)")
		verify   = flag.String("verify", "", "verify an existing shard directory and exit")
	)
	flag.Parse()

	if *verify != "" {
		se, man, err := shard.LoadDir(*verify, shard.LoadOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: ok — dataset %q, %d %s shard(s), %d nodes, %d edges, %d replicated, %s index\n",
			*verify, man.Name, se.NumShards(), man.Mode, man.TotalNodes, man.TotalEdges,
			man.Replicated, man.Index)
		printShards(man)
		return
	}

	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	dsName := *name
	if dsName == "" {
		dsName = filepath.Base(filepath.Clean(*out))
	}

	g, err := loadGraph(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d nodes, %d edges\n", *in, g.N(), g.M())

	start := time.Now()
	plan, err := shard.Partition(g, *k, shard.Mode(*mode))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned: %d weakly-connected component(s) -> %d shard(s), mode %s, %d vertex copies replicated (%s)\n",
		plan.Components, *k, plan.Mode, plan.Replicated, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	man, err := shard.WriteDir(*out, dsName, g, plan, shard.Options{Index: *index, Parallel: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: dataset %q, %s index, built in %s\n",
		*out, man.Name, man.Index, time.Since(start).Round(time.Millisecond))
	printShards(man)

	// Re-load through the verification path so a partitioning run never
	// reports success for a directory the catalog would refuse.
	if _, _, err := shard.LoadDir(*out, shard.LoadOptions{}); err != nil {
		log.Fatalf("self-verification failed: %v", err)
	}
	fmt.Println("self-verification ok")
}

// loadGraph reads a snapshot or (possibly gzipped) graph JSON.
func loadGraph(path string) (*graph.Graph, error) {
	g, _, err := snapshot.LoadFile(path)
	if err == nil {
		return g, nil
	}
	if !errors.Is(err, snapshot.ErrNotSnapshot) {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err = graphio.Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

func printShards(man *shard.Manifest) {
	for i, sf := range man.Shards {
		fmt.Printf("  shard %d: %s  %d nodes, %d edges  sha256 %s…\n",
			i, sf.Snap, sf.Nodes, sf.Edges, sf.SnapSHA256[:12])
	}
}
