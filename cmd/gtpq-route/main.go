// Command gtpq-route fronts a fleet of gtpq-serve processes: one
// primary (which receives every POST /update) plus read replicas that
// follow it with -follow (see internal/repl). The router probes each
// backend's GET /readyz, spreads queries round-robin across the
// in-sync set, retries idempotent reads on another backend when one
// fails mid-request, and — when nothing is in sync — either serves
// stale answers marked with X-GTPQ-Stale: 1 (-stale-ok) or sheds with
// 503.
//
// Usage:
//
//	gtpq-route -primary http://primary:8080 \
//	    -replicas http://r1:8081,http://r2:8082 -listen :8000
//	gtpq-route -primary http://primary:8080 -stale-ok   # degrade, don't shed
//
// The router's own endpoints: GET /healthz (liveness), GET /readyz
// (200 while any backend is ready), GET /metrics (gtpq_router_*
// families), GET /backends (probe state as JSON). Everything else is
// proxied.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gtpq/internal/repl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtpq-route: ")
	var (
		listen      = flag.String("listen", ":8000", "listen address")
		primary     = flag.String("primary", "", "primary base URL, receives all writes (required)")
		replicas    = flag.String("replicas", "", "comma-separated replica base URLs for reads (default: the primary)")
		healthEvery = flag.Duration("health-interval", 500*time.Millisecond, "readiness probe period")
		failAfter   = flag.Int("fail-after", 2, "consecutive probe failures before a backend is marked down")
		retryBudget = flag.Int("retry-budget", 2, "extra backends an idempotent read may retry on")
		staleOK     = flag.Bool("stale-ok", false, "when no backend is in sync, serve from a lagging one with X-GTPQ-Stale: 1 instead of shedding with 503")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-attempt proxy deadline")
		maxBody     = flag.Int64("max-body-bytes", 4<<20, "largest request body the router will buffer for retryable forwarding")
	)
	flag.Parse()
	if *primary == "" {
		flag.Usage()
		os.Exit(2)
	}
	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, strings.TrimRight(r, "/"))
		}
	}

	rt, err := repl.NewRouter(repl.RouterConfig{
		Primary:        strings.TrimRight(*primary, "/"),
		Replicas:       reps,
		HealthInterval: *healthEvery,
		FailAfter:      *failAfter,
		RetryBudget:    *retryBudget,
		StaleOK:        *staleOK,
		Timeout:        *timeout,
		MaxBodyBytes:   *maxBody,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()

	hs := &http.Server{
		Addr:              *listen,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		rt.Stop()
		close(done)
	}()

	backends := append([]string{}, reps...)
	if len(backends) == 0 {
		backends = []string{*primary}
	}
	log.Printf("routing %s -> primary %s, reads across %s",
		*listen, *primary, strings.Join(backends, ", "))
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
