// Command gtpq evaluates a GTPQ (written in the qlang DSL) over a
// generated dataset and prints the results and cost counters.
//
// Usage:
//
//	gtpq -data xmark -scale 1 -query q.gtpq [-limit 20] [-minimize]
//	gtpq -data arxiv -query q.gtpq
//	gtpq -data xmark -index tc -parallel -query q.gtpq   # alternate reachability backend
//	echo "node x label=open_auction output" | gtpq -data xmark -query -
//	gtpq -data xmark -save-snapshot x.snap -query q.gtpq # persist graph+index
//	gtpq -data file -graph x.snap -query q.gtpq          # reload without rebuilding
//
// The DSL:
//
//	node  <name> label=<l> [parent=<name>] [edge=pc|ad] [output] [ref]
//	pnode <name> ...                  # predicate (filter) node
//	pred  <name>: <formula>           # e.g.  bidder | !seller
//	where <name>: attr>=value ...     # extra attribute comparisons
//
// A query that marks no node as output returns its root — ParseQuery,
// the Builder, and Engine.Eval all apply the same default.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"gtpq/internal/arxiv"
	"gtpq/internal/core"
	"gtpq/internal/graph"
	"gtpq/internal/graphio"
	"gtpq/internal/gtea"
	"gtpq/internal/qlang"
	"gtpq/internal/reach"
	"gtpq/internal/snapshot"
	"gtpq/internal/xmark"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gtpq: ")
	var (
		data     = flag.String("data", "xmark", "dataset: xmark, arxiv, or file")
		file     = flag.String("graph", "", "graph file (with -data file): JSON, gzipped JSON, or a .snap snapshot")
		scale    = flag.Float64("scale", 1, "XMark scaling factor")
		persons  = flag.Int("persons", 1000, "XMark persons per scale unit")
		queryArg = flag.String("query", "", "query file in the qlang DSL ('-' for stdin)")
		limit    = flag.Int("limit", 20, "max result rows to print (0: all)")
		minimize = flag.Bool("minimize", false, "minimize the query first (Algorithm 1)")
		index    = flag.String("index", "", "reachability index backend: "+strings.Join(reach.Kinds(), ", ")+" (default threehop)")
		parallel = flag.Bool("parallel", false, "build the index with multiple goroutines")
		saveSnap = flag.String("save-snapshot", "", "write the graph and built index to this file (load it later with -data file)")
		plan     = flag.String("plan", "on", "cost-based pruning order + multiway kernels: on or off (off restores the paper's fixed post-order)")
	)
	flag.Parse()
	if *queryArg == "" {
		flag.Usage()
		os.Exit(2)
	}
	noPlan, err := parsePlanFlag(*plan)
	if err != nil {
		log.Fatal(err)
	}

	src, err := readQuery(*queryArg)
	if err != nil {
		log.Fatal(err)
	}
	q, err := qlang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if !core.Satisfiable(q) {
		fmt.Println("query is unsatisfiable: the answer is empty on every graph")
		return
	}
	if *minimize {
		before := q.Size()
		q = core.Minimize(q)
		fmt.Printf("minimized query: %d -> %d nodes\n", before, q.Size())
	}

	var g *graph.Graph
	var eng *gtea.Engine
	start := time.Now()
	switch *data {
	case "xmark":
		var st xmark.Stats
		g, st = xmark.Generate(xmark.Config{Scale: *scale, PersonsPerUnit: *persons, Seed: 7})
		fmt.Printf("xmark scale %.1f: %d nodes, %d edges (generated in %s)\n",
			*scale, st.Nodes, st.Edges, time.Since(start).Round(time.Millisecond))
	case "arxiv":
		var st arxiv.Stats
		g, st = arxiv.Generate(arxiv.DefaultConfig())
		fmt.Printf("arxiv: %d nodes, %d edges, %d labels (generated in %s)\n",
			st.Nodes, st.Edges, st.Labels, time.Since(start).Round(time.Millisecond))
	case "file":
		if *file == "" {
			log.Fatal("-data file requires -graph <path>")
		}
		var h reach.ContourIndex
		var err error
		g, h, err = snapshot.LoadFile(*file)
		switch {
		case err == nil:
			// Snapshot: graph and index revived together, no build.
			eng = gtea.NewWithIndexOptions(g, h, gtea.Options{NoPlan: noPlan})
			fmt.Printf("%s: %d nodes, %d edges, %s index (snapshot loaded in %s)\n",
				*file, g.N(), g.M(), h.Kind(), time.Since(start).Round(time.Millisecond))
		case errors.Is(err, snapshot.ErrNotSnapshot):
			f, err := os.Open(*file)
			if err != nil {
				log.Fatal(err)
			}
			g, err = graphio.Load(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: %d nodes, %d edges\n", *file, g.N(), g.M())
		default:
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown dataset %q", *data)
	}

	if eng == nil {
		start = time.Now()
		var err error
		eng, err = gtea.NewWithOptions(g, gtea.Options{Index: *index, Parallel: *parallel, NoPlan: noPlan})
		if err != nil {
			log.Fatal(err)
		}
		if th, ok := eng.H.(*reach.ThreeHop); ok {
			fmt.Printf("%s index: %d chains, %d list entries (built in %s)\n",
				eng.H.Kind(), th.NumChains(), th.IndexSize(), time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("%s index: %d elements (built in %s)\n",
				eng.H.Kind(), eng.H.IndexSize(), time.Since(start).Round(time.Millisecond))
		}
	}

	if *saveSnap != "" {
		start = time.Now()
		if err := snapshot.SaveFile(*saveSnap, g, eng.H); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot written to %s in %s\n", *saveSnap, time.Since(start).Round(time.Millisecond))
	}

	start = time.Now()
	ans, st := eng.EvalStats(q)
	elapsed := time.Since(start)
	fmt.Printf("%d result(s) in %s  [input=%d index=%d intermediate=%d]\n",
		ans.Len(), elapsed.Round(time.Microsecond), st.Input, st.Index, st.Intermediate)

	// Header.
	fmt.Print("  ")
	for _, u := range ans.Out {
		fmt.Printf("%-16s", q.Nodes[u].Name)
	}
	fmt.Println()
	for i, row := range ans.Tuples {
		if *limit > 0 && i >= *limit {
			fmt.Printf("  ... %d more\n", ans.Len()-i)
			break
		}
		fmt.Print("  ")
		for _, v := range row {
			fmt.Printf("%-16s", fmt.Sprintf("%d(%s)", v, g.Label(v)))
		}
		fmt.Println()
	}
}

// parsePlanFlag maps the -plan value to gtea.Options.NoPlan.
func parsePlanFlag(v string) (noPlan bool, err error) {
	switch v {
	case "on", "true", "1":
		return false, nil
	case "off", "false", "0":
		return true, nil
	}
	return false, fmt.Errorf("invalid -plan value %q (want on or off)", v)
}

func readQuery(arg string) (string, error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}
